"""Tests for the unified cluster harness across all schemes."""

import pytest

from repro.core.qos import Priority
from repro.experiments.cluster import (
    SCHEMES,
    ClusterConfig,
    build_cluster,
    run_cluster,
)
from repro.rpc.sizes import FixedSize


def small_cfg(scheme, **overrides):
    params = dict(
        scheme=scheme,
        num_hosts=4,
        duration_ms=3.0,
        warmup_ms=1.0,
        size_dist=FixedSize(16 * 1024),
        mu=0.6,
        rho=1.0,
        period_us=50.0,
        seed=99,
    )
    params.update(overrides)
    return ClusterConfig(**params)


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(scheme="nonsense")
    with pytest.raises(ValueError):
        ClusterConfig(num_hosts=1)
    with pytest.raises(ValueError):
        ClusterConfig(duration_ms=5.0, warmup_ms=5.0)


def test_slo_map_from_config():
    cfg = small_cfg("aequitas", slo_high_us=10.0, slo_med_us=20.0)
    slo_map = cfg.slo_map
    assert slo_map.get(0).latency_target_ns == 10_000
    assert slo_map.get(1).latency_target_ns == 20_000
    assert not slo_map.has_slo(2)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_every_scheme_runs_and_completes_rpcs(scheme):
    result = run_cluster(small_cfg(scheme))
    assert result.metrics.issued_count > 50
    completed = len(result.metrics.completed)
    if scheme in ("d3", "pdq"):
        # Deadline schemes legitimately terminate flows ("better never
        # than late") — require that RPCs are *resolved* (completed or
        # explicitly quenched), not stalled.
        resolved = completed + result.metrics.terminated
        assert resolved > 0.7 * result.metrics.issued_count, scheme
        assert completed > 0.05 * result.metrics.issued_count, scheme
    else:
        assert completed > 0.7 * result.metrics.issued_count, scheme


def test_aequitas_is_only_scheme_with_downgrades():
    overloaded = dict(mu=0.95, rho=1.3, period_us=100.0,
                      priority_mix={Priority.PC: 0.9, Priority.BE: 0.1},
                      duration_ms=6.0, warmup_ms=2.0, slo_high_us=5.0)
    aeq = run_cluster(small_cfg("aequitas", **overloaded))
    wfq = run_cluster(small_cfg("wfq", **overloaded))
    assert aeq.metrics.downgrades > 0
    assert wfq.metrics.downgrades == 0


def test_deadline_schemes_attach_deadlines():
    for scheme, expected in (("d3", 250_000), ("pdq", 250_000)):
        result = build_cluster(small_cfg(scheme))
        rpc = result.stacks[0].issue(1, Priority.PC, 4096)
        assert result.stacks[0].deadline_fn(rpc) == expected


def test_result_accessors():
    result = run_cluster(small_cfg("wfq"))
    mix = result.admitted_mix()
    assert sum(mix.values()) == pytest.approx(1.0)
    assert result.offered_mix() == mix  # no admission control
    tail = result.rnl_tail_us(0, 99.0)
    assert tail > 0
    assert 0.0 <= result.slo_met_fraction(0) <= 1.0
    assert 0.0 < result.goodput_fraction() <= 1.0


def test_custom_traffic_fn_used():
    called = {}

    def traffic(sim, stacks, cfg):
        called["yes"] = True
        stacks[0].issue(1, Priority.PC, 4096)

    result = run_cluster(small_cfg("wfq", traffic_fn=traffic))
    assert called.get("yes")
    assert result.metrics.issued_count == 1


def test_deterministic_given_seed():
    a = run_cluster(small_cfg("aequitas"))
    b = run_cluster(small_cfg("aequitas"))
    assert a.metrics.issued_count == b.metrics.issued_count
    assert len(a.metrics.completed) == len(b.metrics.completed)
    assert a.rnl_tail_us(0) == b.rnl_tail_us(0)


def test_different_seeds_differ():
    a = run_cluster(small_cfg("aequitas", seed=1))
    b = run_cluster(small_cfg("aequitas", seed=2))
    assert a.metrics.issued_count != b.metrics.issued_count
