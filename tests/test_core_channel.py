"""Unit tests for the per-destination channel registry."""

from repro.core.admission import AdmissionParams
from repro.core.channel import ChannelRegistry
from repro.core.qos import Priority
from repro.core.slo import SLOMap
from repro.sim.engine import ns_from_us


def make_registry(seed=0):
    slo_map = SLOMap.for_three_levels(ns_from_us(15), ns_from_us(25))
    return ChannelRegistry(slo_map, AdmissionParams(), seed=seed)


def test_controllers_created_lazily():
    reg = make_registry()
    assert len(reg) == 0
    reg.controller("hostA")
    assert len(reg) == 1
    reg.controller("hostA")
    assert len(reg) == 1
    reg.controller("hostB")
    assert len(reg) == 2


def test_same_destination_same_controller():
    reg = make_registry()
    assert reg.controller(5) is reg.controller(5)
    assert reg.controller(5) is not reg.controller(6)


def test_per_destination_state_isolated():
    reg = make_registry()
    a = reg.controller("a")
    b = reg.controller("b")
    a.on_rpc_completion(ns_from_us(10_000), 8, 0)
    assert a.p_admit(0) < 1.0
    assert b.p_admit(0) == 1.0


def test_substreams_independent_of_creation_order():
    """Adding a destination must not perturb another's coin flips."""

    def flips(order):
        reg = make_registry(seed=42)
        for dst in order:
            ctrl = reg.controller(dst)
            ctrl.on_rpc_completion(ns_from_us(10_000), 8, 0)  # p < 1
        ctrl = reg.controller("target")
        for _ in range(50):
            ctrl.on_rpc_completion(ns_from_us(10_000), 8, 0)
        return [ctrl.on_rpc_issue(Priority.PC).downgraded for _ in range(100)]

    assert flips(["target", "x"]) == flips(["x", "target"])


def test_controllers_snapshot():
    reg = make_registry()
    reg.controller(1)
    reg.controller(2)
    snap = reg.controllers()
    assert set(snap) == {1, 2}
