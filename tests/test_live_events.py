"""Live JSONL event logs and their compatibility with the obs vocabulary.

The live runtime's selling point for tooling is that its ``"rpc"``,
``"admission"``, and ``"queue"`` lines are byte-layout-compatible with
what :func:`repro.obs.export.write_jsonl` emits for a traced simulation
— same type tags, same field sets — so downstream consumers need no
live/sim branch.  These tests pin that shape, the live-only record
types, the idempotent-close contract, and the track-extraction helpers
the convergence gate is built on.
"""

import json
import os
import signal
import subprocess
import sys
from dataclasses import asdict, fields

import pytest

from repro.live.events import (
    EventLog,
    merge_tracks,
    p_admit_tracks,
    read_events,
)
from repro.obs.trace import AdmissionEvent, QueueSpan, RpcSpan

RPC = RpcSpan(
    rpc_id=1,
    src=0,
    dst=0,
    qos_requested=0,
    qos_run=0,
    downgraded=False,
    issued_ns=100,
    payload_bytes=4096,
    size_mtus=1,
    completed_ns=200,
    rnl_ns=100,
    slo_met=True,
    terminated=False,
)

ADMISSION = AdmissionEvent(
    time_ns=150, channel="c0->srv", qos=0, p_admit=0.5, kind="decrease"
)

QUEUE = QueueSpan(
    node="srv", qos=0, enqueued_ns=100, dequeued_ns=150, size_bytes=4096, kind=0
)


def write_sample_log(path):
    with EventLog(path) as log:
        log.run_header(role="client", seed=7)
        log.rpc(RPC)
        log.admission(ADMISSION)
        log.queue(QUEUE)
        log.retry(request_id=1, attempt=1, delay_ns=5, reason="timeout", time_ns=160)
        log.conn("connect", "127.0.0.1:9", 90)
    return path


class TestEventLog:
    def test_records_round_trip_in_order(self, tmp_path):
        records = read_events(write_sample_log(tmp_path / "log.jsonl"))
        assert [r["type"] for r in records] == [
            "run", "rpc", "admission", "queue", "retry", "conn",
        ]

    def test_span_records_match_obs_vocabulary(self, tmp_path):
        """Each span line is exactly {type} + the obs dataclass fields —
        the shape write_jsonl gives simulated runs."""
        records = read_events(write_sample_log(tmp_path / "log.jsonl"))
        by_type = {r["type"]: r for r in records}
        for record_kind, span in (
            ("rpc", RPC), ("admission", ADMISSION), ("queue", QUEUE),
        ):
            record = dict(by_type[record_kind])
            assert record.pop("type") == record_kind
            assert record == asdict(span)
            assert set(record) == {f.name for f in fields(span)}

    def test_close_is_idempotent_and_drops_stragglers(self, tmp_path):
        log = EventLog(tmp_path / "log.jsonl")
        log.rpc(RPC)
        log.close()
        log.close()
        log.rpc(RPC)  # late straggler after close: dropped, not raised
        assert len(read_events(tmp_path / "log.jsonl")) == 1

    def test_blank_lines_skipped_on_read(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_sample_log(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n   \n")
        assert len(read_events(path)) == 6


class TestTornTail:
    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        """A process killed mid-write leaves a torn last line; reading
        the log must salvage everything before it."""
        path = write_sample_log(tmp_path / "log.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type":"rpc","rpc_id":99,"iss')  # no newline either
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            records = read_events(path)
        assert len(records) == 6
        assert all(r.get("rpc_id") != 99 for r in records)

    def test_strict_mode_raises_on_torn_tail(self, tmp_path):
        path = write_sample_log(tmp_path / "log.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"broken')
        with pytest.raises(json.JSONDecodeError):
            read_events(path, strict=True)

    def test_mid_file_corruption_always_raises(self, tmp_path):
        """A malformed line with valid records after it is corruption,
        not a torn tail — salvaging would silently drop data."""
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"type":"run","seed":1}\n{"bro\n{"type":"rpc","rpc_id":1}\n'
        )
        with pytest.raises(ValueError, match="not a truncated final line"):
            read_events(path)

    def test_two_malformed_lines_raise(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"type":"run"}\n{"bro\n{"ken\n')
        with pytest.raises(ValueError, match="not a truncated final line"):
            read_events(path)


class SteppingClock:
    def __init__(self, step_ns=1):
        self._now = 0
        self._step = step_ns

    def now_ns(self):
        self._now += self._step
        return self._now


class TestFlushPolicy:
    def test_default_writes_through_every_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EventLog(path)
        log.rpc(RPC)
        # Visible to a concurrent reader before close: flushed per line.
        assert len(read_events(path)) == 1
        log.close()

    def test_line_batching_defers_then_close_flushes(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EventLog(path, flush_lines=10)
        for _ in range(9):
            log.rpc(RPC)
        assert read_events(path) == []  # still buffered
        log.rpc(RPC)  # tenth line trips the policy
        assert len(read_events(path)) == 10
        log.rpc(RPC)
        log.close()  # close flushes the partial batch
        assert len(read_events(path)) == 11

    def test_explicit_flush_overrides_policy(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with EventLog(path, flush_lines=100) as log:
            log.rpc(RPC)
            log.flush()
            assert len(read_events(path)) == 1

    def test_interval_policy_flushes_on_clock(self, tmp_path):
        path = tmp_path / "log.jsonl"
        clock = SteppingClock(step_ns=400)
        log = EventLog(
            path, flush_lines=1000, flush_interval_ns=1000, clock=clock
        )
        log.rpc(RPC)  # 400 ns since last flush: held
        assert read_events(path) == []
        log.rpc(RPC)
        log.rpc(RPC)  # crosses the 1000 ns interval: flushed
        assert len(read_events(path)) == 3
        log.close()

    def test_policy_validation(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(tmp_path / "a.jsonl", flush_lines=0)
        with pytest.raises(ValueError):
            EventLog(tmp_path / "b.jsonl", flush_interval_ns=5)  # no clock
        with pytest.raises(ValueError):
            EventLog(
                tmp_path / "c.jsonl",
                flush_interval_ns=0,
                clock=SteppingClock(),
            )


_SIGTERM_CHILD = """\
import signal, sys, time
sys.path.insert(0, {src!r})
from repro.live.events import EventLog

log = EventLog({path!r}, flush_lines=5)
signal.signal(signal.SIGTERM, lambda *a: sys.exit(0))
for i in range(12):
    log.write_record({{"type": "tick", "i": i}})
print("ready", flush=True)
time.sleep(30)
"""


def test_sigtermed_child_log_still_parses(tmp_path):
    """The batch policy loses at most the unflushed tail on SIGTERM, and
    what hit the disk parses cleanly."""
    path = tmp_path / "child.jsonl"
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    child = subprocess.Popen(
        [sys.executable, "-c",
         _SIGTERM_CHILD.format(src=os.path.abspath(src), path=str(path))],
        stdout=subprocess.PIPE,
    )
    try:
        assert child.stdout.readline().strip() == b"ready"
        child.send_signal(signal.SIGTERM)
        assert child.wait(timeout=10) == 0
    finally:
        if child.poll() is None:
            child.kill()
    records = read_events(path)
    # Two full batches of five definitely flushed; the last two lines
    # were policy-buffered and may or may not have survived exit.
    assert len(records) >= 10
    assert [r["i"] for r in records] == list(range(len(records)))


class TestTrackExtraction:
    def test_p_admit_tracks_keyed_by_channel_and_qos(self, tmp_path):
        records = read_events(write_sample_log(tmp_path / "log.jsonl"))
        tracks = p_admit_tracks(records)
        assert tracks == {"c0->srv/qos0": [(150, 0.5)]}

    def test_points_sorted_by_time(self):
        records = [
            {"type": "admission", "channel": "c0->srv", "qos": 0,
             "p_admit": 0.4, "time_ns": 300, "kind": "decrease"},
            {"type": "admission", "channel": "c0->srv", "qos": 0,
             "p_admit": 0.9, "time_ns": 100, "kind": "decrease"},
            {"type": "rpc", "rpc_id": 1},  # non-admission lines ignored
        ]
        tracks = p_admit_tracks(records)
        assert tracks["c0->srv/qos0"] == [(100, 0.9), (300, 0.4)]

    def test_merge_tracks_unions_and_sorts(self):
        merged = merge_tracks(
            [
                {"c0->srv/qos0": [(200, 0.8)], "c1->srv/qos0": [(50, 0.9)]},
                {"c0->srv/qos0": [(100, 1.0)]},
            ]
        )
        assert merged["c0->srv/qos0"] == [(100, 1.0), (200, 0.8)]
        assert merged["c1->srv/qos0"] == [(50, 0.9)]
