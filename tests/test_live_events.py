"""Live JSONL event logs and their compatibility with the obs vocabulary.

The live runtime's selling point for tooling is that its ``"rpc"``,
``"admission"``, and ``"queue"`` lines are byte-layout-compatible with
what :func:`repro.obs.export.write_jsonl` emits for a traced simulation
— same type tags, same field sets — so downstream consumers need no
live/sim branch.  These tests pin that shape, the live-only record
types, the idempotent-close contract, and the track-extraction helpers
the convergence gate is built on.
"""

from dataclasses import asdict, fields

from repro.live.events import (
    EventLog,
    merge_tracks,
    p_admit_tracks,
    read_events,
)
from repro.obs.trace import AdmissionEvent, QueueSpan, RpcSpan

RPC = RpcSpan(
    rpc_id=1,
    src=0,
    dst=0,
    qos_requested=0,
    qos_run=0,
    downgraded=False,
    issued_ns=100,
    payload_bytes=4096,
    size_mtus=1,
    completed_ns=200,
    rnl_ns=100,
    slo_met=True,
    terminated=False,
)

ADMISSION = AdmissionEvent(
    time_ns=150, channel="c0->srv", qos=0, p_admit=0.5, kind="decrease"
)

QUEUE = QueueSpan(
    node="srv", qos=0, enqueued_ns=100, dequeued_ns=150, size_bytes=4096, kind=0
)


def write_sample_log(path):
    with EventLog(path) as log:
        log.run_header(role="client", seed=7)
        log.rpc(RPC)
        log.admission(ADMISSION)
        log.queue(QUEUE)
        log.retry(request_id=1, attempt=1, delay_ns=5, reason="timeout", time_ns=160)
        log.conn("connect", "127.0.0.1:9", 90)
    return path


class TestEventLog:
    def test_records_round_trip_in_order(self, tmp_path):
        records = read_events(write_sample_log(tmp_path / "log.jsonl"))
        assert [r["type"] for r in records] == [
            "run", "rpc", "admission", "queue", "retry", "conn",
        ]

    def test_span_records_match_obs_vocabulary(self, tmp_path):
        """Each span line is exactly {type} + the obs dataclass fields —
        the shape write_jsonl gives simulated runs."""
        records = read_events(write_sample_log(tmp_path / "log.jsonl"))
        by_type = {r["type"]: r for r in records}
        for record_kind, span in (
            ("rpc", RPC), ("admission", ADMISSION), ("queue", QUEUE),
        ):
            record = dict(by_type[record_kind])
            assert record.pop("type") == record_kind
            assert record == asdict(span)
            assert set(record) == {f.name for f in fields(span)}

    def test_close_is_idempotent_and_drops_stragglers(self, tmp_path):
        log = EventLog(tmp_path / "log.jsonl")
        log.rpc(RPC)
        log.close()
        log.close()
        log.rpc(RPC)  # late straggler after close: dropped, not raised
        assert len(read_events(tmp_path / "log.jsonl")) == 1

    def test_blank_lines_skipped_on_read(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_sample_log(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n   \n")
        assert len(read_events(path)) == 6


class TestTrackExtraction:
    def test_p_admit_tracks_keyed_by_channel_and_qos(self, tmp_path):
        records = read_events(write_sample_log(tmp_path / "log.jsonl"))
        tracks = p_admit_tracks(records)
        assert tracks == {"c0->srv/qos0": [(150, 0.5)]}

    def test_points_sorted_by_time(self):
        records = [
            {"type": "admission", "channel": "c0->srv", "qos": 0,
             "p_admit": 0.4, "time_ns": 300, "kind": "decrease"},
            {"type": "admission", "channel": "c0->srv", "qos": 0,
             "p_admit": 0.9, "time_ns": 100, "kind": "decrease"},
            {"type": "rpc", "rpc_id": 1},  # non-admission lines ignored
        ]
        tracks = p_admit_tracks(records)
        assert tracks["c0->srv/qos0"] == [(100, 0.9), (300, 0.4)]

    def test_merge_tracks_unions_and_sorts(self):
        merged = merge_tracks(
            [
                {"c0->srv/qos0": [(200, 0.8)], "c1->srv/qos0": [(50, 0.9)]},
                {"c0->srv/qos0": [(100, 1.0)]},
            ]
        )
        assert merged["c0->srv/qos0"] == [(100, 1.0), (200, 0.8)]
        assert merged["c1->srv/qos0"] == [(50, 0.9)]
