"""Multiwindow SLO burn-rate detection over metrics snapshots.

The monitor is source-agnostic (live counters or the sim histogram
fallback), stateful (fire/resolve hysteresis), and window-scaled for
short runs; each of those properties is pinned here with hand-built
snapshot streams where the expected burn multiples are arithmetic.
"""

import pytest

from repro.core.qos import QoSConfig, WEIGHTS_2_QOS
from repro.core.slo import SLO, SLOMap
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    Alert,
    BurnRateConfig,
    SloMonitor,
    SloTarget,
    quiet_after_convergence,
)

S = 1_000_000_000

#: 1 s short / 4 s long windows, firing at 2x the allowed miss rate.
CONFIG = BurnRateConfig(
    short_window_ns=1 * S, long_window_ns=4 * S, threshold=2.0
)


def counter_snapshot(tracked, missed, qos=0):
    return {f"slo_tracked{{qos={qos}}}": tracked, f"slo_miss{{qos={qos}}}": missed}


def monitor(allowed=0.1, config=CONFIG):
    return SloMonitor([SloTarget(qos=0, allowed_miss_rate=allowed)], config)


class TestCounterSource:
    def test_sustained_burn_fires_then_resolves(self):
        mon = monitor()
        alerts = []
        # 0-5 s: every tracked RPC misses (burn 10x); 5-15 s: none miss.
        for t in range(16):
            missed = min(t, 5) * 10
            alerts += mon.observe(t * S, counter_snapshot(t * 10, missed))
        states = [(a.time_ns // S, a.state) for a in alerts]
        assert states[0][1] == "firing"
        assert states[-1][1] == "resolved"
        assert len(states) == 2  # one transition each way, no flapping
        assert not mon.firing(0)
        fire = alerts[0]
        assert fire.burn_short == pytest.approx(10.0)
        assert fire.burn_long == pytest.approx(10.0)

    def test_short_blip_does_not_fire(self):
        """One bad second inside a healthy long window: the long window
        (the blip rejector) stays under threshold, so no alert."""
        mon = monitor()
        tracked = missed = 0
        alerts = []
        for t in range(12):
            tracked += 100
            # 5 misses/s is half the 10%-of-100 budget; the 60-miss blip
            # at t=6 sends the short window to 6x but leaves the long
            # window (75 misses / 400 tracked = 1.875x) under threshold.
            missed += 60 if t == 6 else 5
            alerts += mon.observe(t * S, counter_snapshot(tracked, missed))
        assert alerts == []

    def test_no_new_data_means_zero_burn(self):
        mon = monitor()
        for t in range(8):
            mon.observe(t * S, counter_snapshot(100, 100))  # totals frozen
        assert mon.alerts == []

    def test_history_pruned_to_long_window(self):
        mon = monitor()
        for t in range(50):
            mon.observe(t * S, counter_snapshot(t, 0))
        history = mon._history[0]
        # One anchor older than the long window, nothing older than that.
        assert history[0][0] <= (49 - 4) * S < history[1][0]
        assert len(history) <= 7


class TestHistogramFallback:
    def test_misses_interpolated_above_target(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rnl_norm_ns", qos=0)
        mon = SloMonitor(
            [
                SloTarget(
                    qos=0, allowed_miss_rate=0.1, normalized_target_ns=25e6
                )
            ],
            CONFIG,
            histogram_bounds=registry.all_histogram_bounds(),
        )
        alerts = []
        for t in range(10):
            for _ in range(10):
                # After t=3 every observation lands way above the 25 ms
                # target: burn 10x once the windows fill.
                hist.observe(1e6 if t < 3 else 900e6)
            alerts += mon.observe(
                t * S, registry.snapshot(include_buckets=True)
            )
        assert alerts and alerts[0].state == "firing"
        assert mon.firing(0)

    def test_no_bounds_no_target_reads_zero(self):
        registry = MetricsRegistry()
        registry.histogram("rnl_norm_ns", qos=0).observe(900e6)
        mon = SloMonitor([SloTarget(qos=0, allowed_miss_rate=0.1)], CONFIG)
        mon.observe(0, registry.snapshot(include_buckets=True))
        mon.observe(5 * S, registry.snapshot(include_buckets=True))
        assert mon.alerts == []

    def test_register_bounds_arms_the_fallback_late(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rnl_norm_ns", qos=0)
        mon = SloMonitor(
            [SloTarget(qos=0, allowed_miss_rate=0.1, normalized_target_ns=25e6)],
            CONFIG,
        )
        mon.register_bounds(registry.all_histogram_bounds())
        for t in range(8):
            hist.observe(900e6)
            mon.observe(t * S, registry.snapshot(include_buckets=True))
        assert any(a.state == "firing" for a in mon.alerts)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateConfig(short_window_ns=0)
        with pytest.raises(ValueError):
            BurnRateConfig(short_window_ns=10 * S, long_window_ns=5 * S)
        with pytest.raises(ValueError):
            BurnRateConfig(threshold=0.0)
        with pytest.raises(ValueError):
            BurnRateConfig(threshold=2.0, resolve_threshold=3.0)
        with pytest.raises(ValueError):
            SloTarget(qos=0, allowed_miss_rate=0.0)
        with pytest.raises(ValueError):
            SloMonitor([], CONFIG)

    def test_scaled_to_clips_windows_for_short_runs(self):
        scaled = BurnRateConfig().scaled_to(10 * S)
        assert scaled.long_window_ns == 10 * S // 3
        assert scaled.short_window_ns == 1 * S
        assert scaled.threshold == BurnRateConfig().threshold
        # Long horizons keep the defaults.
        assert BurnRateConfig().scaled_to(600 * S) == BurnRateConfig()

    def test_from_slo_map_derives_budget_and_target(self):
        slo_map = SLOMap(
            {0: SLO(25_000_000, 90.0)}, QoSConfig(weights=WEIGHTS_2_QOS)
        )
        mon = SloMonitor.from_slo_map(slo_map, CONFIG)
        target = mon._targets[0]
        assert target.allowed_miss_rate == pytest.approx(0.1)
        assert target.normalized_target_ns == pytest.approx(25e6)


class TestReplayAndQuiet:
    def test_replay_matches_streaming(self):
        series = [
            (t * S, counter_snapshot(t * 10, min(t, 5) * 10))
            for t in range(16)
        ]
        streamed = monitor()
        for t_ns, snap in series:
            streamed.observe(t_ns, snap)
        replayed = monitor().replay(series)
        assert replayed == streamed.alerts

    def _alert(self, t_ns, state):
        return Alert(
            time_ns=t_ns, qos=0, state=state, burn_short=3.0, burn_long=3.0,
            miss_rate_short=0.3, miss_rate_long=0.3, allowed_miss_rate=0.1,
            short_window_ns=S, long_window_ns=4 * S,
        )

    def test_quiet_after_convergence(self):
        startup = [self._alert(1 * S, "firing"), self._alert(4 * S, "resolved")]
        assert quiet_after_convergence(startup, settle_ns=5 * S)
        # A fire past the settle point fails the assertion...
        late = startup + [self._alert(8 * S, "firing")]
        assert not quiet_after_convergence(late, settle_ns=5 * S)
        # ...and so does firing *into* the settle point unresolved.
        unresolved = [self._alert(1 * S, "firing")]
        assert not quiet_after_convergence(unresolved, settle_ns=5 * S)
        assert quiet_after_convergence([], settle_ns=5 * S)
