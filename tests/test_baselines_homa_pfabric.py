"""Unit tests for the Homa and pFabric baselines."""

from repro.baselines.homa import (
    DEFAULT_UNSCHEDULED_MTUS,
    HOMA_PRIORITY_LEVELS,
    HomaEndpoint,
    homa_priority,
    homa_scheduler_factory,
)
from repro.baselines.pfabric import (
    DEFAULT_PFABRIC_WINDOW,
    pfabric_scheduler_factory,
    pfabric_transport_config,
)
from repro.net.packet import MTU_BYTES
from repro.net.queues import PFabricScheduler, StrictPriorityScheduler
from repro.net.topology import build_star
from repro.sim.engine import Simulator, ns_from_ms
from repro.transport.base import Message


# ----------------------------------------------------------------------
# Homa
# ----------------------------------------------------------------------
def test_homa_priority_buckets_monotone():
    prios = [homa_priority(r) for r in (1, 2, 4, 8, 16, 32, 64, 65, 10_000)]
    assert prios == sorted(prios)
    assert prios[0] == 0
    assert prios[-1] == HOMA_PRIORITY_LEVELS - 1


def make_homa_cluster(num_hosts=3):
    sim = Simulator()
    net = build_star(sim, num_hosts, homa_scheduler_factory(), line_rate_bps=100e9)
    eps = [HomaEndpoint(sim, h, line_rate_bps=100e9) for h in net.hosts]
    for a in eps:
        for b in eps:
            if a is not b:
                a.register_peer(b)
    return sim, eps


def test_homa_small_message_fully_unscheduled():
    sim, eps = make_homa_cluster()
    done = []
    msg = Message(dst=1, payload_bytes=2 * MTU_BYTES, qos=0,
                  on_complete=done.append)
    eps[0].send_message(msg)
    sim.run(until=ns_from_ms(1))
    assert done == [msg]
    assert eps[1].grants_sent == 0  # small: no grants needed


def test_homa_large_message_uses_grants():
    sim, eps = make_homa_cluster()
    done = []
    total_mtus = DEFAULT_UNSCHEDULED_MTUS + 20
    msg = Message(dst=1, payload_bytes=total_mtus * MTU_BYTES, qos=0,
                  on_complete=done.append)
    eps[0].send_message(msg)
    sim.run(until=ns_from_ms(2))
    assert done == [msg]
    assert eps[1].grants_sent == 20  # one per scheduled packet


def test_homa_grants_favor_smallest_remaining():
    """SRPT: a late-arriving small message finishes before a big one."""
    sim, eps = make_homa_cluster()
    big_done, small_done = [], []
    big = Message(dst=2, payload_bytes=200 * MTU_BYTES, qos=0,
                  on_complete=big_done.append)
    eps[0].send_message(big)
    small = Message(dst=2, payload_bytes=20 * MTU_BYTES, qos=0,
                    on_complete=small_done.append)
    eps[1].send_message(small)
    sim.run(until=ns_from_ms(5))
    assert small_done and big_done
    assert small_done[0].completed_ns < big_done[0].completed_ns


def test_homa_scheduler_has_eight_levels():
    sched = homa_scheduler_factory()()
    assert isinstance(sched, StrictPriorityScheduler)
    assert sched.num_classes == HOMA_PRIORITY_LEVELS


# ----------------------------------------------------------------------
# pFabric
# ----------------------------------------------------------------------
def test_pfabric_factories():
    sched = pfabric_scheduler_factory()()
    assert isinstance(sched, PFabricScheduler)
    cfg = pfabric_transport_config()
    cc = cfg.cc_factory()
    assert cc.cwnd == DEFAULT_PFABRIC_WINDOW


def test_pfabric_small_wins_under_contention():
    """With SRPT queues and drops, a small message beats a large one
    issued at the same time toward the same receiver."""
    sim = Simulator()
    net = build_star(sim, 3, pfabric_scheduler_factory(), line_rate_bps=100e9)
    cfg = pfabric_transport_config(ack_bypass=True)
    from repro.transport.reliable import TransportEndpoint

    eps = [TransportEndpoint(sim, h, cfg) for h in net.hosts]
    for a in eps:
        for b in eps:
            if a is not b:
                a.register_peer(b)
    big_done, small_done = [], []
    big = Message(dst=2, payload_bytes=256 * MTU_BYTES, qos=0,
                  on_complete=big_done.append)
    small = Message(dst=2, payload_bytes=4 * MTU_BYTES, qos=0,
                    on_complete=small_done.append)
    eps[0].send_message(big)
    eps[1].send_message(small)
    sim.run(until=ns_from_ms(5))
    assert small_done and big_done
    assert small_done[0].completed_ns < big_done[0].completed_ns


def test_pfabric_recovers_from_srpt_drops():
    """Many concurrent messages overflow the tiny pFabric buffer; the
    fast RTO must still complete everything."""
    sim = Simulator()
    tiny = 8 * (MTU_BYTES + 64)  # ~8 packets: two 12-packet windows overflow it
    net = build_star(sim, 3, pfabric_scheduler_factory(tiny), line_rate_bps=100e9)
    cfg = pfabric_transport_config(ack_bypass=True)
    from repro.transport.reliable import TransportEndpoint

    eps = [TransportEndpoint(sim, h, cfg) for h in net.hosts]
    for a in eps:
        for b in eps:
            if a is not b:
                a.register_peer(b)
    done = []
    for src in (0, 1):
        for _ in range(20):
            eps[src].send_message(
                Message(dst=2, payload_bytes=16 * MTU_BYTES, qos=0,
                        on_complete=done.append)
            )
    sim.run(until=ns_from_ms(10))
    assert len(done) == 40
    drops = net.switch_ports[2].scheduler.stats.total_dropped
    assert drops > 0  # the buffer actually overflowed
