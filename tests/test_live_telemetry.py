"""The live telemetry plane: sampler, scrape endpoint, zero overhead off.

The load-bearing test here is the byte-identity one: PR 4's
zero-overhead-off contract, restated for live mode, says a process
that never arms telemetry runs the identical event-log path — and a
process that *does* arm it (registries on both ends, snapshot sampler,
scrape endpoint) changes nothing about the event stream either.  With
a deterministic stepping clock per process, "changes nothing" is
checkable as literal file-byte equality, which also proves the hot
paths take no extra clock reads when instruments are attached.
"""

import asyncio
import re

import pytest

from repro.core.qos import QoSConfig, WEIGHTS_2_QOS
from repro.core.slo import SLO, SLOMap
from repro.live.client import AdmissionClient, RetryPolicy
from repro.live.events import EventLog, read_events
from repro.live.server import LiveServer
from repro.live.telemetry import (
    LiveTelemetry,
    TelemetryConfig,
    TelemetryEndpoint,
    scrape_openmetrics,
)
from repro.obs.metrics import OPENMETRICS_CONTENT_TYPE, MetricsRegistry
from repro.obs.slo import BurnRateConfig, SloMonitor, SloTarget

MS = 1_000_000


class SteppingClock:
    """Deterministic clock: every read advances by a fixed step, so a
    run's timestamps are a pure function of its clock-read sequence."""

    def __init__(self, step_ns: int = MS):
        self._now = 0
        self._step = step_ns

    def now_ns(self) -> int:
        self._now += self._step
        return self._now


def slo_map() -> SLOMap:
    return SLOMap({0: SLO(25 * MS, 90.0)}, QoSConfig(weights=WEIGHTS_2_QOS))


def run_sequential_calls(tmp_path, *, with_telemetry: bool):
    """A fixed sequence of sequential calls against an in-process
    server; returns (client log path, server log path)."""
    server_log_path = tmp_path / "server.jsonl"
    client_log_path = tmp_path / "client.jsonl"

    async def _main():
        # Separate clocks per "process", as in the real runtime; the
        # sampler gets its own too (wall-clock reads are side-effect
        # free, stepping-clock reads are not).
        server_clock = SteppingClock()
        client_clock = SteppingClock()
        registry = MetricsRegistry() if with_telemetry else None
        client_registry = MetricsRegistry() if with_telemetry else None
        with EventLog(server_log_path) as server_log, EventLog(
            client_log_path
        ) as client_log:
            server = LiveServer(
                server_clock,
                server_log,
                service_ns_per_mtu=1 * MS,
                queue_limit=16,
                registry=registry,
            )
            port = await server.start()
            client = AdmissionClient(
                "c0",
                "127.0.0.1",
                port,
                slo_map(),
                seed=1,
                clock=client_clock,
                log=client_log,
                registry=client_registry,
            )
            endpoint = sampler = None
            if with_telemetry:
                endpoint = TelemetryEndpoint(registry)
                await endpoint.start()
                sampler = LiveTelemetry(
                    client_registry,
                    SteppingClock(),
                    EventLog(tmp_path / "metrics.jsonl"),
                )
                await sampler.start()
            try:
                for qos in (0, 0, 1, 0, 1, 0):
                    await client.call(qos, payload_bytes=4096)
            finally:
                await client.aclose()
                await server.stop()
                if sampler is not None:
                    await sampler.stop()
                if endpoint is not None:
                    await endpoint.stop()

    asyncio.run(_main())
    return (
        normalize_ports(client_log_path.read_bytes()),
        normalize_ports(server_log_path.read_bytes()),
    )


def normalize_ports(raw: bytes) -> bytes:
    """Mask the one nondeterministic token: ephemeral TCP ports in
    ``conn`` records' peer addresses.  Everything else must match to
    the byte."""
    return re.sub(rb'"peer":"127\.0\.0\.1:\d+"', b'"peer":"127.0.0.1:0"', raw)


class TestZeroOverheadOff:
    def test_event_streams_byte_identical_with_telemetry_on(self, tmp_path):
        off_a = run_sequential_calls(tmp_path / "off-a", with_telemetry=False)
        off_b = run_sequential_calls(tmp_path / "off-b", with_telemetry=False)
        on = run_sequential_calls(tmp_path / "on", with_telemetry=True)
        # Sanity first: the scenario itself is deterministic — without
        # this, a byte mismatch below would be undiagnosable.
        assert off_a == off_b
        # The contract: arming the full telemetry plane (registries on
        # both ends, sampler, endpoint) leaves both event logs
        # byte-identical to the telemetry-off run.
        assert on == off_a

    def test_off_run_writes_no_metrics_sidecar(self, tmp_path):
        run_sequential_calls(tmp_path, with_telemetry=False)
        assert not (tmp_path / "metrics.jsonl").exists()


# ----------------------------------------------------------------------
# the scrape endpoint
# ----------------------------------------------------------------------
async def raw_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {
        k.lower(): v.strip()
        for k, v in (line.split(":", 1) for line in lines[1:])
    }
    return lines[0], headers, body


def with_endpoint(scenario):
    async def _main():
        registry = MetricsRegistry()
        registry.counter("rpc_issued", qos=0).inc(5)
        registry.histogram("rnl_norm_ns", qos=0).observe(3e6)
        endpoint = TelemetryEndpoint(registry)
        port = await endpoint.start()
        try:
            return await scenario(registry, endpoint, port)
        finally:
            await endpoint.stop()

    return asyncio.run(_main())


class TestEndpoint:
    def test_metrics_serves_openmetrics(self):
        async def scenario(registry, endpoint, port):
            return await raw_get(port, "/metrics")

        status, headers, body = with_endpoint(scenario)
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"] == OPENMETRICS_CONTENT_TYPE
        assert int(headers["content-length"]) == len(body)
        text = body.decode("utf-8")
        assert "# TYPE repro_rpc_issued counter" in text
        assert 'repro_rpc_issued_total{qos="0"} 5' in text
        assert text.endswith("# EOF\n")

    def test_query_string_is_ignored(self):
        async def scenario(registry, endpoint, port):
            return await scrape_openmetrics("127.0.0.1", port, "/metrics?x=1")

        assert "# EOF" in with_endpoint(scenario)

    def test_healthz_and_unknown_path(self):
        async def scenario(registry, endpoint, port):
            health = await raw_get(port, "/healthz")
            missing = await raw_get(port, "/nope")
            return health, missing

        (h_status, _, h_body), (m_status, _, _) = with_endpoint(scenario)
        assert h_status == "HTTP/1.1 200 OK" and h_body == b"ok\n"
        assert m_status == "HTTP/1.1 404 Not Found"

    def test_scrape_helper_raises_on_non_200(self):
        async def scenario(registry, endpoint, port):
            with pytest.raises(ConnectionError):
                await scrape_openmetrics("127.0.0.1", port, "/nope")
            return None

        with_endpoint(scenario)

    def test_counters_monotone_across_scrapes(self):
        async def scenario(registry, endpoint, port):
            first = await scrape_openmetrics("127.0.0.1", port)
            registry.counter("rpc_issued", qos=0).inc(3)
            second = await scrape_openmetrics("127.0.0.1", port)
            return first, second, endpoint.scrapes

        first, second, scrapes = with_endpoint(scenario)
        assert 'repro_rpc_issued_total{qos="0"} 5' in first
        assert 'repro_rpc_issued_total{qos="0"} 8' in second
        assert scrapes == 2

    def test_port_is_bound_and_stop_idempotent(self):
        async def scenario(registry, endpoint, port):
            assert endpoint.port == port > 0
            await endpoint.stop()
            await endpoint.stop()
            return None

        with_endpoint(scenario)


# ----------------------------------------------------------------------
# the snapshot sampler
# ----------------------------------------------------------------------
class TestSampler:
    def test_bounds_ride_along_only_on_change(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("rnl_norm_ns", qos=0).observe(1e6)
        log_path = tmp_path / "metrics.jsonl"
        sampler = LiveTelemetry(registry, SteppingClock(), EventLog(log_path))
        sampler.sample()
        sampler.sample()
        registry.histogram("queue_wait_ns", qos=1).observe(2e6)
        sampler.sample()
        records = read_events(log_path)
        assert [r["type"] for r in records] == ["metrics"] * 3
        assert "bounds" in records[0]
        assert "bounds" not in records[1]  # unchanged: elided
        assert "bounds" in records[2]  # new histogram label appeared
        assert "queue_wait_ns{qos=1}" in records[2]["bounds"]
        # Snapshots carry cumulative bucket counts for differencing.
        entry = records[0]["metrics"]["rnl_norm_ns{qos=0}"]
        assert entry["count"] == 1 and "buckets" in entry

    def test_stop_takes_final_snapshot_and_closes_log(self, tmp_path):
        log_path = tmp_path / "metrics.jsonl"

        async def _main():
            registry = MetricsRegistry()
            registry.counter("rpc_issued", qos=0).inc()
            sampler = LiveTelemetry(
                registry,
                SteppingClock(),
                EventLog(log_path),
                interval_ns=10 * MS,
            )
            await sampler.start()
            await asyncio.sleep(0.05)
            await sampler.stop()
            await sampler.stop()  # idempotent
            return sampler.samples

        samples = asyncio.run(_main())
        records = read_events(log_path)
        # At least the final stop() snapshot; the loop adds more.
        assert samples == len(records) >= 1

    def test_monitor_alerts_reach_both_logs(self, tmp_path):
        registry = MetricsRegistry()
        tracked = registry.counter("slo_tracked", qos=0)
        missed = registry.counter("slo_miss", qos=0)
        monitor = SloMonitor(
            [SloTarget(qos=0, allowed_miss_rate=0.1)],
            BurnRateConfig(short_window_ns=MS, long_window_ns=2 * MS),
        )
        event_log_path = tmp_path / "events.jsonl"
        metrics_log_path = tmp_path / "metrics.jsonl"
        sampler = LiveTelemetry(
            registry,
            SteppingClock(step_ns=MS),
            EventLog(metrics_log_path),
            event_log=EventLog(event_log_path),
            monitor=monitor,
        )
        sampler.sample()
        for _ in range(50):  # everything missing: burn 10x the budget
            tracked.inc()
            missed.inc()
            sampler.sample()
        event_alerts = [
            r for r in read_events(event_log_path) if r["type"] == "alert"
        ]
        metrics_alerts = [
            r for r in read_events(metrics_log_path) if r["type"] == "alert"
        ]
        assert event_alerts and event_alerts == metrics_alerts
        assert event_alerts[0]["state"] == "firing"
        assert event_alerts[0]["burn_short"] >= 2.0

    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            LiveTelemetry(
                MetricsRegistry(),
                SteppingClock(),
                EventLog(tmp_path / "m.jsonl"),
                interval_ns=0,
            )
        with pytest.raises(ValueError):
            TelemetryConfig(sample_interval_ns=-1)

    def test_config_is_picklable(self):
        import pickle

        config = TelemetryConfig(metrics_port=9100, sample_interval_ns=MS)
        assert pickle.loads(pickle.dumps(config)) == config
