"""Determinism digests and streaming metrics.

The perf harness (benchmarks/perf) asserts digest equality across
repeats of the *same* process; these tests pin down the underlying
guarantees — same seed gives bit-identical results, and the streaming
MetricsCollector mode aggregates to the same digest the full-retention
mode does.
"""

import pytest

from repro.core.qos import Priority
from repro.rpc.message import Rpc
from repro.rpc.stack import MetricsCollector
from repro.stats.digest import completed_rpc_digest, digest_hex


def _run_star(budget: int, seed: int):
    from benchmarks.perf.scenarios import SCENARIOS

    built = SCENARIOS["star_incast_admission"](budget, seed)
    built.sim.run(**built.run_kwargs)
    return built.digest_fn()


def test_star_admission_same_seed_same_digest():
    """Two fresh builds of the star-admission scenario with one seed
    must agree on completed count, summed RNL, and per-QoS byte mix —
    the whole digest, bit for bit."""
    first = _run_star(60_000, 7)
    second = _run_star(60_000, 7)
    assert first == second
    assert digest_hex(first) == digest_hex(second)
    assert first["completed"] > 0, "scenario must actually complete RPCs"


def test_star_admission_different_seed_different_digest():
    assert _run_star(60_000, 7) != _run_star(60_000, 8)


# ----------------------------------------------------------------------
# Streaming MetricsCollector
# ----------------------------------------------------------------------
def _rpc(rpc_id, qos, payload=4096, rnl=1000):
    r = Rpc(
        src=0,
        dst=1,
        priority=Priority.PC,
        payload_bytes=payload,
        issued_ns=0,
        rpc_id=rpc_id,
    )
    r.qos_requested = qos
    r.qos_run = qos
    r.completed_ns = rnl
    r.rnl_ns = rnl
    return r


def _feed(metrics, n=50):
    for i in range(n):
        r = _rpc(i, qos=i % 3, payload=1000 + i, rnl=500 + i)
        metrics.record_issue(r)
        metrics.record_completion(r)


def test_streaming_collector_matches_retention_digest():
    full = MetricsCollector()
    lean = MetricsCollector(streaming=True)
    _feed(full)
    _feed(lean)
    assert completed_rpc_digest(full) == completed_rpc_digest(lean)
    # Streaming keeps no per-RPC records...
    assert lean.issued == [] and lean.completed == []
    # ...but all aggregate counters match the full collector.
    assert lean.issued_count == full.issued_count == 50
    assert lean.completed_count == 50
    assert lean.run_bytes_by_qos == full.run_bytes_by_qos
    assert lean.admitted_mix() == full.admitted_mix()
    assert lean.offered_mix() == full.offered_mix()


def test_streaming_collector_reservoir_samples():
    lean = MetricsCollector(streaming=True)
    _feed(lean, n=100)
    for qos in range(3):
        samples = lean.normalized_rnl_ns(qos)
        assert samples, "reservoir should hold samples for a served class"
        assert len(samples) <= MetricsCollector.RESERVOIR_SIZE
    assert lean.normalized_rnl_ns(9) == []


def test_streaming_collector_rejects_windowed_queries():
    lean = MetricsCollector(streaming=True)
    _feed(lean)
    with pytest.raises(RuntimeError):
        lean.normalized_rnl_ns(0, since_ns=10)
    with pytest.raises(RuntimeError):
        lean.admitted_mix(since_ns=10)
    with pytest.raises(RuntimeError):
        lean.absolute_rnl_ns(0)
    with pytest.raises(RuntimeError):
        lean.goodput_fraction(since_ns=10)
    with pytest.raises(RuntimeError):
        lean.slo_met_fraction(0, None, until_ns=10)


def test_streaming_collector_whole_run_summaries_match_batch():
    """The streaming collector exposes the same whole-run summary
    interface as batch mode: goodput, percentiles within histogram
    resolution, and a full rnl_summary key set."""
    full = MetricsCollector()
    lean = MetricsCollector(streaming=True)
    _feed(full)
    _feed(lean)
    assert lean.goodput_fraction() == full.goodput_fraction() == 1.0
    for qos in range(3):
        exact = full.rnl_percentile(qos, 99.0)
        approx = lean.rnl_percentile(qos, 99.0)
        # Fixed-bucket interpolation is accurate to one bucket's
        # relative width (~33% at 8 buckets per decade).
        assert approx == pytest.approx(exact, rel=0.35)
        assert set(lean.rnl_summary(qos)) == set(full.rnl_summary(qos))
        assert lean.rnl_summary(qos)["count"] == full.rnl_summary(qos)["count"]
