"""RNL attribution: exact conservation, causal joins, and the diff gate.

The decomposition's core contract is *conservation*: the named segments
of every RPC sum to its measured completion latency exactly — integer
nanoseconds, no residual slop — with uncovered time booked as
propagation.  These tests pin that contract on the pure sweep, on a
full traced fast-profile fig08 simulation, and on an in-process live
client/server run with wire-propagated trace contexts; plus the
``report --diff`` gate that fails when latency shifts between causes.
"""

import asyncio

import pytest

from repro.analysis.attribution import (
    attribute_live,
    attribute_tracer,
    attribution_block,
    attribution_report,
    decompose,
    segment_bucket,
)
from repro.analysis.report import (
    DiffThresholds,
    diff_summaries,
    render_text,
    summarize,
)
from repro.core.qos import QoSConfig, WEIGHTS_2_QOS
from repro.core.slo import SLO, SLOMap
from repro.live.client import AdmissionClient, RetryPolicy
from repro.live.clock import WallClock
from repro.live.events import EventLog, read_events
from repro.live.server import FAULT_DROP, LiveServer

MS = 1_000_000


# ----------------------------------------------------------------------
# decompose: the boundary sweep
# ----------------------------------------------------------------------
class TestDecompose:
    def test_empty_window_yields_nothing(self):
        assert decompose([("a", 0, 10, 1)], 5, 5) == {}

    def test_uncovered_time_is_propagation(self):
        assert decompose([], 0, 100) == {"propagation": 100}

    def test_overlap_resolved_by_priority_and_conserved(self):
        segments = decompose(
            [("a", 0, 10, 1), ("b", 5, 15, 2)], 0, 20
        )
        assert segments == {"a": 5, "b": 10, "propagation": 5}
        assert sum(segments.values()) == 20

    def test_intervals_clip_to_the_window(self):
        segments = decompose([("a", -50, 5, 1), ("b", 8, 999, 1)], 0, 10)
        assert segments == {"a": 5, "propagation": 3, "b": 2}
        assert sum(segments.values()) == 10

    def test_equal_priority_first_interval_wins(self):
        # Deterministic tie-break: first-listed cover keeps the slice.
        assert decompose([("x", 0, 10, 1), ("y", 0, 10, 1)], 0, 10) == {
            "x": 10
        }

    def test_bucket_collapse(self):
        assert segment_bucket("queue:nic3") == "queueing"
        assert segment_bucket("queue_wait") == "queueing"
        assert segment_bucket("service") == "service"


# ----------------------------------------------------------------------
# simulated runs: fast-profile fig08, full causal coverage
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_fig08():
    from repro.obs.scenarios import run_traced_figure

    return run_traced_figure("fig08", profile="fast")


class TestSimAttribution:
    def test_every_segment_sum_matches_measured_latency(self, traced_fig08):
        rpcs = attribute_tracer(traced_fig08.tracer)
        assert len(rpcs) > 100
        for rpc in rpcs:
            assert sum(rpc.segments.values()) == rpc.latency_ns

    def test_every_packet_span_resolves_to_exactly_one_rpc(self, traced_fig08):
        tracer = traced_fig08.tracer
        assert tracer.orphan_spans() == ([], [])
        rpc_ids = {span.rpc_id for span in tracer.rpc_spans}
        for span in tracer.queue_spans:
            assert span.rpc_id in rpc_ids
        for span in tracer.tx_spans:
            assert span.rpc_id in rpc_ids

    def test_block_shares_sum_to_one_per_qos(self, traced_fig08):
        block = attribution_block(attribute_tracer(traced_fig08.tracer))
        assert block["rpcs"] > 0
        for qos_block in block["per_qos"].values():
            assert sum(qos_block["shares"].values()) == pytest.approx(1.0)

    def test_report_renders_shares_and_waterfall(self, traced_fig08):
        text = attribution_report(
            attribute_tracer(traced_fig08.tracer), top_k=2
        )
        assert "RNL attribution" in text
        assert "queueing" in text
        assert "slowest exemplars" in text

    def test_series_document_carries_attribution(self, traced_fig08):
        series = traced_fig08.series()
        block = series["attribution"]
        assert block["rpcs"] > 0
        summary = summarize({"points": [], "series": series})
        assert any(
            "attribution_shares" in qos for qos in summary["qos"].values()
        )


# ----------------------------------------------------------------------
# live runs: wire-propagated contexts join both logs into one trace
# ----------------------------------------------------------------------
#: Quick backoff so the forced-retry scenario stays under a second.
_RETRY = RetryPolicy(
    max_attempts=3,
    deadline_ns=2_000 * MS,
    attempt_timeout_ns=60 * MS,
    backoff_base_ns=20 * MS,
    backoff_cap_ns=80 * MS,
    jitter=0.25,
)


def _slo_map() -> SLOMap:
    return SLOMap({0: SLO(25 * MS, 90.0)}, QoSConfig(weights=WEIGHTS_2_QOS))


def _run_traced_stack(tmp_path, scenario, *, on_request=None):
    async def _main():
        clock = WallClock()
        with EventLog(tmp_path / "server.jsonl") as server_log, EventLog(
            tmp_path / "client.jsonl"
        ) as client_log:
            server = LiveServer(
                clock,
                server_log,
                service_ns_per_mtu=1 * MS,
                on_request=on_request,
            )
            port = await server.start()
            client = AdmissionClient(
                "c0",
                "127.0.0.1",
                port,
                _slo_map(),
                seed=1,
                clock=clock,
                log=client_log,
                retry=_RETRY,
                trace=True,
            )
            try:
                return await scenario(server, client, clock)
            finally:
                await client.aclose()
                await server.stop()

    return asyncio.run(_main())


class TestLiveAttribution:
    def _attributions(self, tmp_path, scenario, *, on_request=None):
        _run_traced_stack(tmp_path, scenario, on_request=on_request)
        client_records = read_events(tmp_path / "client.jsonl")
        server_records = read_events(tmp_path / "server.jsonl")
        return client_records, server_records

    def test_conservation_and_cross_process_join(self, tmp_path):
        async def scenario(server, client, clock):
            for _ in range(3):
                result = await client.call(0, payload_bytes=4096)
                assert result.ok

        client_records, server_records = self._attributions(
            tmp_path, scenario
        )
        rpcs = attribute_live([client_records], server_records)
        assert len(rpcs) == 3
        for rpc in rpcs:
            # The conservation contract, on real wall-clock numbers.
            assert sum(rpc.segments.values()) == rpc.latency_ns
            # Server-side segments joined across the process boundary.
            # Queue residency (higher priority) may shave the dispatch
            # sliver off the virtual-schedule service interval, so the
            # bound is near-but-not-exactly the charged service time.
            assert rpc.segments["service"] >= 0.9 * MS
        # Every server-side record's trace id names a client-side RPC.
        client_trace_ids = {
            r["trace_id"]
            for r in client_records
            if r.get("type") == "rpc" and "trace_id" in r
        }
        server_trace_ids = {
            r["trace_id"] for r in server_records if "trace_id" in r
        }
        assert server_trace_ids
        assert server_trace_ids <= client_trace_ids

    def test_forced_retry_books_backoff_time(self, tmp_path):
        dropped = []

        def drop_first(request):
            if not dropped:
                dropped.append(request.request_id)
                return FAULT_DROP
            return None

        async def scenario(server, client, clock):
            result = await client.call(0, payload_bytes=4096)
            assert result.ok
            assert result.attempts == 2

        client_records, server_records = self._attributions(
            tmp_path, scenario, on_request=drop_first
        )
        (rpc,) = attribute_live([client_records], server_records)
        assert sum(rpc.segments.values()) == rpc.latency_ns
        # The timeout + backoff of the swallowed first attempt shows up
        # as its own named cause, not smeared into propagation.
        assert rpc.segments.get("retry_backoff", 0) >= int(
            _RETRY.backoff_base_ns * (1 - _RETRY.jitter)
        )
        assert "service" in rpc.segments


# ----------------------------------------------------------------------
# the diff gate: latency moving between causes must breach
# ----------------------------------------------------------------------
def _summary_with_shares(shares):
    return {
        "schema": 1,
        "experiment": "live",
        "run_id": "synthetic",
        "profile": "live",
        "run_digest_hex": None,
        "checks_passed": True,
        "points": [{"params": {"seed": 1}, "row": {"calls": 10}}],
        "qos": {"0": {"slo_miss_rate": 0.1, "attribution_shares": shares}},
    }


class TestAttributionDiffGate:
    BASE = {"queueing": 0.60, "retry_backoff": 0.10, "service": 0.30}

    def test_share_shift_beyond_threshold_breaches(self):
        # 15 points of queueing share flowed into retry backoff while
        # everything else (totals, miss rate) stayed put.
        shifted = {"queueing": 0.45, "retry_backoff": 0.25, "service": 0.30}
        result = diff_summaries(
            _summary_with_shares(self.BASE), _summary_with_shares(shifted)
        )
        assert not result.ok
        assert any("attribution share" in b for b in result.breaches)

    def test_new_segment_appearing_breaches(self):
        # A cause absent from the baseline reads as a 0.0 share there.
        grown = {
            "queueing": 0.48,
            "retry_backoff": 0.10,
            "service": 0.30,
            "dispatch": 0.12,
        }
        result = diff_summaries(
            _summary_with_shares(self.BASE), _summary_with_shares(grown)
        )
        assert not result.ok

    def test_shift_within_threshold_passes(self):
        nudged = {"queueing": 0.55, "retry_backoff": 0.15, "service": 0.30}
        result = diff_summaries(
            _summary_with_shares(self.BASE), _summary_with_shares(nudged)
        )
        assert result.ok

    def test_threshold_is_configurable(self):
        nudged = {"queueing": 0.55, "retry_backoff": 0.15, "service": 0.30}
        result = diff_summaries(
            _summary_with_shares(self.BASE),
            _summary_with_shares(nudged),
            DiffThresholds(max_attribution_shift=0.02),
        )
        assert not result.ok


def test_render_text_includes_attribution_panel(traced_fig08):
    doc = {
        "experiment": "fig08",
        "run_id": "t",
        "profile": "fast",
        "checks": {"passed": True},
        "points": [],
        "series": traced_fig08.series(),
    }
    text = render_text(doc)
    assert "RNL attribution" in text
