"""Unit tests for statistics helpers (summaries, samplers, convergence)."""

import math

import pytest

from repro.sim.engine import Simulator
from repro.stats.convergence import (
    convergence_time_ns,
    relative_gap,
    smooth,
    steady_value,
)
from repro.stats.sampler import PeriodicSampler, RateMeter
from repro.stats.summary import cdf_points, mean, p99, p999, percentile, summarize


def test_percentile_basic():
    data = list(range(1, 101))
    assert percentile(data, 50) == pytest.approx(50.5)
    assert p99(data) == pytest.approx(99.01)
    assert p999(data) == pytest.approx(99.901)


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 99))
    assert math.isnan(mean([]))


def test_cdf_points_monotone():
    pts = cdf_points([3.0, 1.0, 2.0])
    assert pts == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)),
                   (3.0, pytest.approx(1.0))]
    assert cdf_points([]) == []


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["count"] == 4
    assert s["mean"] == pytest.approx(2.5)
    assert s["max"] == 4.0
    empty = summarize([])
    assert empty["count"] == 0
    assert math.isnan(empty["mean"])


def test_periodic_sampler_cadence():
    sim = Simulator()
    values = iter(range(100))
    sampler = PeriodicSampler(sim, 1000, lambda: next(values))
    sim.run(until=5500)
    times = sampler.times_ns()
    assert times == [0, 1000, 2000, 3000, 4000, 5000]
    assert sampler.values() == [0, 1, 2, 3, 4, 5]


def test_periodic_sampler_stop():
    sim = Simulator()
    sampler = PeriodicSampler(sim, 1000, lambda: 1.0)
    sim.schedule(2500, sampler.stop)
    sim.run(until=10_000)
    assert len(sampler.samples) == 3


def test_sampler_validation():
    with pytest.raises(ValueError):
        PeriodicSampler(Simulator(), 0, lambda: 1.0)


def test_rate_meter_converts_bytes_to_gbps():
    sim = Simulator()
    counter = {"bytes": 0}
    meter = RateMeter(sim, 1000, lambda: counter["bytes"])
    # 125 bytes per 1000 ns == 1 Gbps.
    def feed():
        counter["bytes"] += 125
        sim.schedule(1000, feed)
    sim.schedule(500, feed)
    sim.run(until=5000)
    values = meter.values_gbps()
    assert values[0] == 0.0  # first sample establishes the baseline
    for v in values[2:]:
        assert v == pytest.approx(1.0)


def test_steady_value_uses_tail():
    trace = [(i, 0.0 if i < 75 else 10.0) for i in range(100)]
    assert steady_value(trace, tail_fraction=0.25) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        steady_value([])


def test_smooth_flattens_sawtooth():
    saw = [(i, 1.0 if i % 2 else 0.0) for i in range(50)]
    smoothed = smooth(saw, window=5)
    mid = [v for _, v in smoothed[5:-5]]
    for v in mid:
        assert 0.3 < v < 0.7


def test_convergence_time_detects_settling():
    trace = [(i * 100, 0.0) for i in range(20)] + [(2000 + i * 100, 1.0) for i in range(60)]
    t = convergence_time_ns(trace, tolerance=0.1, smooth_window=1)
    assert t is not None
    assert 1900 <= t <= 2800


def test_convergence_time_none_when_drifting():
    trace = [(i, float(i)) for i in range(100)]
    assert convergence_time_ns(trace, tolerance=0.01, smooth_window=1) is None


def test_convergence_empty_trace():
    assert convergence_time_ns([]) is None


def test_convergence_immediate_when_flat():
    trace = [(i, 5.0) for i in range(10)]
    assert convergence_time_ns(trace) == 0


def test_relative_gap():
    assert relative_gap(10.0, 10.0) == 0.0
    assert relative_gap(5.0, 10.0) == pytest.approx(0.5)
    assert relative_gap(0.0, 0.0) == 0.0
