"""Unit/integration tests for the reliable transport."""

import pytest

from repro.net.packet import MTU_BYTES
from repro.net.topology import build_star, wfq_factory
from repro.sim.engine import Simulator, ns_from_ms, ns_from_us
from repro.transport.base import FixedWindowCC, Message
from repro.transport.reliable import TransportConfig, TransportEndpoint
from repro.transport.swift import SwiftCC


def make_pair(num_hosts=2, config=None, buffer_bytes=4 * 1024 * 1024):
    sim = Simulator()
    net = build_star(sim, num_hosts, wfq_factory((8, 4, 1), buffer_bytes))
    config = config or TransportConfig()
    endpoints = [TransportEndpoint(sim, h, config) for h in net.hosts]
    for a in endpoints:
        for b in endpoints:
            if a is not b:
                a.register_peer(b)
    return sim, net, endpoints


def test_single_packet_message_completes():
    sim, _, eps = make_pair()
    done = []
    msg = Message(dst=1, payload_bytes=100, qos=0, on_complete=done.append)
    eps[0].send_message(msg)
    sim.run()
    assert done == [msg]
    assert msg.completed_ns is not None
    assert msg.rnl_ns > 0


def test_multi_packet_message_rnl_spans_whole_transfer():
    sim, _, eps = make_pair()
    msg = Message(dst=1, payload_bytes=8 * MTU_BYTES, qos=0)
    eps[0].send_message(msg)
    sim.run()
    assert msg.completed_ns is not None
    # RNL must cover at least 8 serializations at 100 Gbps (~2.6 us).
    assert msg.rnl_ns >= 8 * 330


def test_message_sizes():
    msg = Message(dst=1, payload_bytes=32 * 1024, qos=0)
    assert msg.size_mtus == 8
    assert msg.packet_payload(0) == MTU_BYTES
    assert msg.packet_payload(7) == MTU_BYTES
    with pytest.raises(IndexError):
        msg.packet_payload(8)


def test_partial_final_packet():
    msg = Message(dst=1, payload_bytes=MTU_BYTES + 10, qos=0)
    assert msg.size_mtus == 2
    assert msg.packet_payload(0) == MTU_BYTES
    assert msg.packet_payload(1) == 10


def test_message_rejects_empty_payload():
    with pytest.raises(ValueError):
        Message(dst=1, payload_bytes=0, qos=0)


def test_rnl_unavailable_before_completion():
    msg = Message(dst=1, payload_bytes=100, qos=0)
    with pytest.raises(RuntimeError):
        _ = msg.rnl_ns


def test_messages_complete_in_fifo_order_per_flow():
    sim, _, eps = make_pair()
    done = []
    msgs = [
        Message(dst=1, payload_bytes=2 * MTU_BYTES, qos=0,
                on_complete=lambda m: done.append(m.msg_id))
        for _ in range(5)
    ]
    for m in msgs:
        eps[0].send_message(m)
    sim.run()
    assert done == [m.msg_id for m in msgs]


def test_flows_keyed_by_dst_and_qos():
    sim, _, eps = make_pair(num_hosts=3)
    eps[0].send_message(Message(dst=1, payload_bytes=100, qos=0))
    eps[0].send_message(Message(dst=1, payload_bytes=100, qos=2))
    eps[0].send_message(Message(dst=2, payload_bytes=100, qos=0))
    assert len(eps[0].flows) == 3
    sim.run()


def test_retransmission_recovers_from_drops():
    """A tiny switch buffer forces drops; RTO must recover them all."""
    config = TransportConfig(
        cc_factory=lambda: FixedWindowCC(64.0), rto_ns=50_000, ack_bypass=True
    )
    sim, net, eps = make_pair(config=config, buffer_bytes=3 * (MTU_BYTES + 64))
    done = []
    for _ in range(4):
        eps[0].send_message(
            Message(dst=1, payload_bytes=8 * MTU_BYTES, qos=0,
                    on_complete=done.append)
        )
    sim.run(until=ns_from_ms(50))
    assert len(done) == 4
    flow = eps[0].flow_to(1, 0)
    assert flow.retransmitted_packets > 0


def test_acked_payload_accounting():
    sim, _, eps = make_pair()
    eps[0].send_message(Message(dst=1, payload_bytes=3 * MTU_BYTES, qos=1))
    sim.run()
    flow = eps[0].flow_to(1, 1)
    assert flow.acked_payload_bytes == 3 * MTU_BYTES
    assert eps[0].acked_payload_by_qos[1] == 3 * MTU_BYTES


def test_remaining_payload_bytes_decreases():
    sim, _, eps = make_pair()
    msg = Message(dst=1, payload_bytes=4 * MTU_BYTES, qos=0)
    flow = eps[0].flow_to(1, 0)
    flow.send_message(msg)
    assert flow.remaining_payload_bytes(msg.msg_id) == 4 * MTU_BYTES
    sim.run()
    assert flow.remaining_payload_bytes(msg.msg_id) == 0  # completed


def test_cancel_message_terminates_and_notifies():
    sim, _, eps = make_pair()
    done = []
    msg = Message(dst=1, payload_bytes=64 * MTU_BYTES, qos=0,
                  on_complete=done.append)
    flow = eps[0].flow_to(1, 0)
    flow.send_message(msg)
    sim.run(max_events=5)  # partially transmitted
    assert flow.cancel_message(msg.msg_id)
    assert msg.terminated
    assert done == [msg]
    assert flow.remaining_payload_bytes(msg.msg_id) == 0
    # Cancelling again is a no-op.
    assert not flow.cancel_message(msg.msg_id)
    sim.run()


def test_cancel_unblocks_next_message():
    sim, _, eps = make_pair()
    done = []
    big = Message(dst=1, payload_bytes=128 * MTU_BYTES, qos=0)
    small = Message(dst=1, payload_bytes=MTU_BYTES, qos=0,
                    on_complete=done.append)
    flow = eps[0].flow_to(1, 0)
    flow.send_message(big)
    flow.send_message(small)
    sim.run(max_events=3)
    flow.cancel_message(big.msg_id)
    sim.run()
    assert done == [small]


def test_ack_bypass_and_network_acks_agree_on_completion():
    for bypass in (True, False):
        config = TransportConfig(ack_bypass=bypass)
        sim, _, eps = make_pair(config=config)
        done = []
        eps[0].send_message(
            Message(dst=1, payload_bytes=4 * MTU_BYTES, qos=0,
                    on_complete=done.append)
        )
        sim.run()
        assert len(done) == 1, f"bypass={bypass}"


def test_swift_backoff_limits_inflight():
    """With a congested port, Swift should keep per-flow inflight far
    below the open-loop backlog."""
    config = TransportConfig(cc_factory=lambda: SwiftCC(), ack_bypass=True)
    sim, _, eps = make_pair(num_hosts=3, config=config)
    for src in (0, 1):
        for _ in range(50):
            eps[src].send_message(Message(dst=2, payload_bytes=8 * MTU_BYTES, qos=0))
    sim.run(until=ns_from_us(300))
    for src in (0, 1):
        flow = eps[src].flow_to(2, 0)
        assert flow.inflight <= flow.cc.cwnd + 1


def test_transport_config_validation():
    with pytest.raises(ValueError):
        TransportConfig(base_rtt_ns=0)
    with pytest.raises(ValueError):
        TransportConfig(rto_ns=0)


def test_backlog_counts_unsent_messages():
    sim, _, eps = make_pair()
    flow = eps[0].flow_to(1, 0)
    for _ in range(10):
        flow.send_message(Message(dst=1, payload_bytes=64 * MTU_BYTES, qos=0))
    assert flow.backlog_messages > 0
    assert eps[0].total_backlog_messages() == flow.backlog_messages
    sim.run()
    assert flow.backlog_messages == 0
