"""Unit tests for the D3/PDQ deadline machinery (arbiter + flows)."""

import pytest

from repro.baselines.d3 import (
    BE_DEADLINE_NS,
    D3_DEADLINES_NS,
    d3_arbiter_map,
    d3_deadline_fn,
)
from repro.baselines.deadline import DeadlineEndpoint, PortArbiter
from repro.baselines.pdq import pdq_deadline_fn
from repro.net.queues import FifoScheduler
from repro.net.topology import build_star
from repro.rpc.message import Rpc
from repro.core.qos import Priority
from repro.sim.engine import Simulator, ns_from_ms, ns_from_us
from repro.transport.base import Message


def make_deadline_cluster(mode="d3", num_hosts=3, capacity_bps=100e9):
    sim = Simulator()
    net = build_star(sim, num_hosts, lambda: FifoScheduler(8 * 1024 * 1024),
                     line_rate_bps=capacity_bps)
    arbiters = {
        h.host_id: PortArbiter(sim, capacity_bps, mode=mode) for h in net.hosts
    }
    eps = [DeadlineEndpoint(sim, h, arbiters) for h in net.hosts]
    for a in eps:
        for b in eps:
            if a is not b:
                a.register_peer(b)
    return sim, eps, arbiters


def test_arbiter_mode_validation():
    with pytest.raises(ValueError):
        PortArbiter(Simulator(), 1e9, mode="edf")
    with pytest.raises(ValueError):
        PortArbiter(Simulator(), 0, mode="d3")


def test_deadline_fns():
    rpc = Rpc(src=0, dst=1, priority=Priority.PC, payload_bytes=1000, issued_ns=0)
    rpc.qos_requested = 0
    assert d3_deadline_fn(rpc) == D3_DEADLINES_NS[0] == 250_000
    rpc.qos_requested = 1
    assert pdq_deadline_fn(rpc) == 300_000
    rpc.qos_requested = 2
    assert d3_deadline_fn(rpc) == BE_DEADLINE_NS


def test_d3_message_with_slack_completes():
    sim, eps, arbiters = make_deadline_cluster("d3")
    done = []
    msg = Message(dst=1, payload_bytes=32 * 1024, qos=0,
                  deadline_ns=250_000, on_complete=done.append)
    eps[0].send_message(msg)
    sim.run(until=ns_from_ms(1))
    assert done == [msg]
    assert not msg.terminated
    assert arbiters[1].flows == {}  # deregistered


def test_d3_infeasible_message_terminated_at_deadline():
    sim, eps, arbiters = make_deadline_cluster("d3", capacity_bps=1e9)
    done = []
    # 1 MB at 1 Gbps needs 8 ms; deadline 100 us is hopeless.
    msg = Message(dst=1, payload_bytes=1 << 20, qos=0,
                  deadline_ns=ns_from_us(100), on_complete=done.append)
    eps[0].send_message(msg)
    sim.run(until=ns_from_ms(2))
    assert msg.terminated
    assert arbiters[1].terminated_count == 1


def test_d3_rate_split_between_deadline_flows():
    """Two equal-deadline flows each get roughly half the capacity."""
    sim, eps, _ = make_deadline_cluster("d3", capacity_bps=10e9)
    done = []
    for src in (0, 1):
        eps[src].send_message(
            Message(dst=2, payload_bytes=256 * 1024, qos=0,
                    deadline_ns=ns_from_ms(5), on_complete=done.append)
        )
    sim.run(until=ns_from_ms(4))
    assert len(done) == 2
    # Each 256 KB at ~5 Gbps effective: ~0.42 ms, well before 4 ms but
    # far beyond the single-flow line-rate time (~0.2 ms at 10 Gbps).
    finish = [m.completed_ns for m in done]
    assert max(finish) > 300_000


def test_pdq_earliest_deadline_preempts():
    sim, eps, _ = make_deadline_cluster("pdq", capacity_bps=10e9)
    early, late = [], []
    # Register the late-deadline message first: PDQ must still finish
    # the early-deadline one first.
    eps[0].send_message(Message(dst=2, payload_bytes=128 * 1024, qos=0,
                                deadline_ns=ns_from_ms(50), on_complete=late.append))
    eps[1].send_message(Message(dst=2, payload_bytes=128 * 1024, qos=0,
                                deadline_ns=ns_from_ms(1), on_complete=early.append))
    sim.run(until=ns_from_ms(10))
    assert early and late
    assert early[0].completed_ns < late[0].completed_ns


def test_pdq_terminates_flows_that_cannot_make_it():
    sim, eps, arbiters = make_deadline_cluster("pdq", capacity_bps=1e9)
    msgs = []
    # Five 1 MB messages, all due in 12 ms, on a 1 Gbps link: each takes
    # ~9 ms alone (wire time + headers at the arbiter's 95% headroom),
    # so only the first can finish; PDQ should quench the rest.
    for i in range(5):
        m = Message(dst=1, payload_bytes=1 << 20, qos=0, deadline_ns=ns_from_ms(12))
        msgs.append(m)
        eps[0].send_message(m)
    sim.run(until=ns_from_ms(30))
    completed = [m for m in msgs if m.completed_ns is not None and not m.terminated]
    terminated = [m for m in msgs if m.terminated]
    assert len(completed) == 1
    assert len(terminated) == 4


def test_no_deadline_flows_use_leftover_capacity_d3():
    sim, eps, _ = make_deadline_cluster("d3", capacity_bps=10e9)
    done = []
    eps[0].send_message(Message(dst=1, payload_bytes=64 * 1024, qos=2,
                                deadline_ns=None, on_complete=done.append))
    sim.run(until=ns_from_ms(5))
    assert len(done) == 1  # best-effort still completes via residual share


def test_endpoint_cleans_up_completed_flows():
    sim, eps, _ = make_deadline_cluster("d3")
    for _ in range(20):
        eps[0].send_message(Message(dst=1, payload_bytes=8 * 1024, qos=0,
                                    deadline_ns=ns_from_ms(10)))
    sim.run(until=ns_from_ms(5))
    assert len(eps[0]._flow_of_msg) == 0


def test_d3_arbiter_map_covers_all_hosts():
    sim = Simulator()
    arbiters = d3_arbiter_map(sim, [0, 1, 2], 100e9)
    assert set(arbiters) == {0, 1, 2}
    assert all(a.mode == "d3" for a in arbiters.values())
