"""Unit tests for SLO specs and the SLO map."""

import pytest

from repro.core.qos import QoSConfig
from repro.core.slo import SLO, SLOMap
from repro.sim.engine import ns_from_us


def test_increment_window_scales_with_percentile():
    # Algorithm 1 line 4: window = target * 100 / (100 - pctl).
    slo_99 = SLO(ns_from_us(15), target_percentile=99.0)
    slo_999 = SLO(ns_from_us(15), target_percentile=99.9)
    assert slo_99.increment_window_ns == 100 * ns_from_us(15)
    assert slo_999.increment_window_ns == 1000 * ns_from_us(15)
    # Higher tail -> more conservative (longer) window.
    assert slo_999.increment_window_ns > slo_99.increment_window_ns


def test_budget_scales_with_size():
    slo = SLO(ns_from_us(10))
    assert slo.budget_ns(1) == ns_from_us(10)
    assert slo.budget_ns(8) == ns_from_us(80)


def test_budget_floor_at_one_mtu():
    slo = SLO(ns_from_us(10))
    assert slo.budget_ns(0) == ns_from_us(10)


def test_is_met_strict_inequality():
    slo = SLO(1000)
    assert slo.is_met(999, 1)
    assert not slo.is_met(1000, 1)
    assert slo.is_met(7999, 8)
    assert not slo.is_met(8000, 8)


def test_slo_validation():
    with pytest.raises(ValueError):
        SLO(0)
    with pytest.raises(ValueError):
        SLO(1000, target_percentile=100.0)
    with pytest.raises(ValueError):
        SLO(1000, target_percentile=0.0)


def test_slomap_three_levels():
    m = SLOMap.for_three_levels(ns_from_us(15), ns_from_us(25))
    assert m.has_slo(0) and m.has_slo(1)
    assert not m.has_slo(2)
    assert m.get(0).latency_target_ns == ns_from_us(15)
    assert list(m.levels()) == [0, 1]


def test_slomap_rejects_scavenger_slo():
    cfg = QoSConfig((4, 1))
    with pytest.raises(ValueError):
        SLOMap({0: SLO(1000), 1: SLO(2000)}, cfg)


def test_slomap_rejects_unknown_level():
    cfg = QoSConfig((8, 4, 1))
    with pytest.raises(ValueError):
        SLOMap({5: SLO(1000)}, cfg)


def test_slomap_two_level_config():
    cfg = QoSConfig((4, 1))
    m = SLOMap({0: SLO(ns_from_us(20))}, cfg)
    assert m.has_slo(0)
    assert not m.has_slo(1)
    assert m.qos_config.lowest == 1
