"""Unit/integration tests for the RPC stack and metrics collector."""

import pytest

from repro.core.admission import AdmissionParams
from repro.core.qos import Priority
from repro.core.slo import SLOMap
from repro.net.packet import MTU_BYTES
from repro.net.topology import build_star, wfq_factory
from repro.rpc.stack import MetricsCollector, RpcStack
from repro.sim.engine import Simulator, ns_from_us
from repro.transport.reliable import TransportConfig, TransportEndpoint


def make_cluster(num_hosts=3, admission=True, pctl=99.0, **stack_kwargs):
    sim = Simulator()
    net = build_star(sim, num_hosts, wfq_factory((8, 4, 1)))
    slo_map = SLOMap.for_three_levels(
        ns_from_us(15), ns_from_us(25), target_percentile=pctl
    )
    eps = [TransportEndpoint(sim, h, TransportConfig(ack_bypass=True)) for h in net.hosts]
    for a in eps:
        for b in eps:
            if a is not b:
                a.register_peer(b)
    metrics = MetricsCollector()
    stacks = [
        RpcStack(sim, net.hosts[i], eps[i], slo_map, AdmissionParams(),
                 metrics, seed=i, admission_enabled=admission, **stack_kwargs)
        for i in range(num_hosts)
    ]
    return sim, stacks, metrics, slo_map


def test_issue_and_complete_records_metrics():
    sim, stacks, metrics, _ = make_cluster()
    rpc = stacks[0].issue(1, Priority.PC, 32 * 1024)
    assert rpc.qos_requested == 0
    assert metrics.issued_count == 1
    sim.run()
    assert rpc.completed
    assert rpc.rnl_ns > 0
    assert len(metrics.completed) == 1


def test_phase1_priority_mapping():
    sim, stacks, metrics, _ = make_cluster(admission=False)
    for prio, qos in ((Priority.PC, 0), (Priority.NC, 1), (Priority.BE, 2)):
        rpc = stacks[0].issue(1, prio, 4096)
        assert rpc.qos_requested == qos
        assert rpc.qos_run == qos
    sim.run()


def test_admission_disabled_never_downgrades():
    sim, stacks, metrics, _ = make_cluster(admission=False)
    for _ in range(50):
        stacks[0].issue(1, Priority.PC, 32 * 1024)
    sim.run()
    assert metrics.downgrades == 0


def test_downgrade_notification_fires():
    notified = []
    sim, stacks, metrics, _ = make_cluster(on_downgrade=notified.append)
    ctrl = stacks[0].registry.controller(1)
    # Force a low admit probability, then issue.
    for _ in range(200):
        ctrl.on_rpc_completion(ns_from_us(10_000), 8, 0)
    for _ in range(100):
        stacks[0].issue(1, Priority.PC, 32 * 1024)
    assert notified
    assert all(r.downgraded and r.qos_run == 2 for r in notified)
    sim.run()


def test_completion_feeds_admission_controller():
    sim, stacks, _, __ = make_cluster()
    stacks[0].issue(1, Priority.PC, 32 * 1024)
    sim.run()
    ctrl = stacks[0].registry.controller(1)
    inc, dec = ctrl.state_counters(0)
    assert inc + dec >= 0  # controller saw the completion path
    # A fast RPC within SLO must not decrease p_admit.
    assert ctrl.p_admit(0) == 1.0


def test_qos_mapper_override():
    sim, stacks, metrics, _ = make_cluster(
        admission=False, qos_mapper=lambda rpc: 2
    )
    rpc = stacks[0].issue(1, Priority.PC, 4096)
    assert rpc.qos_requested == 2  # misaligned: PC riding the scavenger
    sim.run()


def test_deadline_fn_sets_absolute_deadline():
    captured = {}

    class SpyEndpoint(TransportEndpoint):
        def send_message(self, msg):
            captured["deadline"] = msg.deadline_ns
            super().send_message(msg)

    sim = Simulator()
    net = build_star(sim, 2, wfq_factory((8, 4, 1)))
    slo_map = SLOMap.for_three_levels(ns_from_us(15), ns_from_us(25))
    eps = [SpyEndpoint(sim, h, TransportConfig(ack_bypass=True)) for h in net.hosts]
    eps[0].register_peer(eps[1])
    eps[1].register_peer(eps[0])
    stack = RpcStack(sim, net.hosts[0], eps[0], slo_map,
                     deadline_fn=lambda rpc: 250_000)
    sim.schedule(1000, stack.issue, 1, Priority.PC, 4096)
    sim.run()
    assert captured["deadline"] == 1000 + 250_000


def test_admitted_and_offered_mix():
    sim, stacks, metrics, _ = make_cluster(admission=False)
    stacks[0].issue(1, Priority.PC, 3 * MTU_BYTES)
    stacks[0].issue(1, Priority.BE, MTU_BYTES)
    sim.run()
    offered = metrics.offered_mix()
    assert offered[0] == pytest.approx(0.75)
    assert offered[2] == pytest.approx(0.25)
    assert metrics.admitted_mix() == offered  # no downgrades


def test_mix_window_filtering():
    sim, stacks, metrics, _ = make_cluster(admission=False)
    stacks[0].issue(1, Priority.PC, MTU_BYTES)
    sim.run()
    cutoff = sim.now + 1
    sim.schedule(10_000, stacks[0].issue, 1, Priority.BE, MTU_BYTES)
    sim.run()
    assert set(metrics.offered_mix()) == {0, 2}
    late_only = metrics.offered_mix(since_ns=cutoff)
    assert set(late_only) == {2}


def test_slo_met_fraction_counts_downgrades_as_misses():
    sim, stacks, metrics, slo_map = make_cluster()
    ctrl = stacks[0].registry.controller(1)
    for _ in range(300):
        ctrl.on_rpc_completion(ns_from_us(10_000), 8, 0)  # crash p_admit
    for _ in range(50):
        stacks[0].issue(1, Priority.PC, 32 * 1024)
    sim.run()
    met = metrics.slo_met_fraction(0, slo_map)
    # Nearly everything was downgraded -> low met fraction.
    assert met < 0.2


def test_slo_met_fraction_window_bounds():
    sim, stacks, metrics, slo_map = make_cluster(admission=False)
    stacks[0].issue(1, Priority.PC, 4096)
    sim.run()
    t_mid = sim.now + 1
    sim.schedule(5_000, stacks[0].issue, 1, Priority.PC, 4096)
    sim.run()
    assert metrics.slo_met_fraction(0, slo_map) == pytest.approx(1.0)
    assert metrics.slo_met_fraction(0, slo_map, until_ns=t_mid) == pytest.approx(1.0)
    assert metrics.slo_met_fraction(0, slo_map, since_ns=t_mid) == pytest.approx(1.0)


def test_goodput_fraction_all_completed():
    sim, stacks, metrics, _ = make_cluster(admission=False)
    for _ in range(10):
        stacks[0].issue(1, Priority.NC, 2 * MTU_BYTES)
    sim.run()
    assert metrics.goodput_fraction() == pytest.approx(1.0)


def test_normalized_rnl_per_mtu():
    sim, stacks, metrics, _ = make_cluster(admission=False)
    rpc = stacks[0].issue(1, Priority.PC, 8 * MTU_BYTES)
    sim.run()
    assert rpc.normalized_rnl_ns() == pytest.approx(rpc.rnl_ns / 8)
    samples = metrics.normalized_rnl_ns(0)
    assert samples == [pytest.approx(rpc.rnl_ns / 8)]


def test_issue_hooks_fire():
    sim, stacks, metrics, _ = make_cluster(admission=False)
    issued, completed = [], []
    metrics.on_issue_hook = issued.append
    metrics.on_complete_hook = completed.append
    stacks[0].issue(1, Priority.PC, 4096)
    assert len(issued) == 1
    sim.run()
    assert len(completed) == 1
