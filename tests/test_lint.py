"""simlint fixture tests: every rule must fire on a minimal bad snippet
and stay quiet on the corresponding good one, suppression comments must
silence exactly the named rule, and the host-side allowlist must exempt
orchestration code from the determinism rules.

The final test is the repo gate: ``src`` and ``tests`` must lint clean,
which is what keeps ``python -m repro lint src tests`` exiting 0 in CI.
"""

from pathlib import Path

import pytest

from repro.lint import RULES, classify, lint_paths, lint_source
from repro.lint.runner import main as lint_main
from repro.lint.rules import parse_rule_list

SIM_PATH = "src/repro/sim/fixture.py"
NET_PATH = "src/repro/net/fixture.py"
GENERAL_PATH = "tests/fixture.py"
HOST_PATH = "src/repro/runner/fixture.py"

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_in(source: str, path: str = SIM_PATH):
    return [f.rule for f in lint_source(source, path)]


# ----------------------------------------------------------------------
# One bad + one good fixture per rule
# ----------------------------------------------------------------------
BAD_FIXTURES = {
    "SIM001": "import time\n\ndef now():\n    return time.time()\n",
    "SIM002": "import random\n\ndef draw():\n    return random.random()\n",
    "SIM003": (
        "def stale(tag, head_tag):\n"
        "    return tag == head_tag\n"
    ),
    "SIM004": (
        "def kick(sim, hosts):\n"
        "    for h in set(hosts):\n"
        "        sim.schedule(1, h.start)\n"
    ),
    "SIM005": "def collect(acc=[]):\n    return acc\n",
    "SIM006": "import random\n\n_RNG = random.Random(0)\n",
    "SIM007": (
        "def finish(sim, cleanup):\n"
        "    sim.stop()\n"
        "    sim.post(0, cleanup)\n"
    ),
    "SIM008": "def run_point(point):\n    return {}\n",
    "SIM009": (
        "def on_deliver(pkt):\n"
        "    print('delivered', pkt.serial)\n"
    ),
    "SIM010": (
        "class Port:\n"
        "    def on_deliver(self, pkt):\n"
        "        self.delivered.append(pkt)\n"
    ),
    "SIM011": (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        self._tx_cache[size] = self.compute(size)\n"
    ),
}

GOOD_FIXTURES = {
    "SIM001": (
        "def now(sim):\n"
        "    return sim.now\n"
    ),
    "SIM002": (
        "from repro.sim.rng import make_rng\n\n"
        "def draw(seed):\n"
        "    return make_rng(seed).random()\n"
    ),
    "SIM003": (
        "def stale(tag_queue, serial):\n"
        "    return tag_queue[0][1] != serial\n"
    ),
    "SIM004": (
        "def kick(sim, hosts):\n"
        "    for h in sorted(set(hosts)):\n"
        "        sim.schedule(1, h.start)\n"
    ),
    "SIM005": (
        "def collect(acc=None):\n"
        "    return [] if acc is None else acc\n"
    ),
    "SIM006": (
        "import random\n\n"
        "def fresh(seed):\n"
        "    return random.Random(seed)\n"
    ),
    "SIM007": (
        "def finish(sim, cleanup):\n"
        "    sim.post(0, cleanup)\n"
        "    sim.stop()\n"
    ),
    "SIM008": "def run_point(point, seed):\n    return {}\n",
    "SIM009": (
        "def on_deliver(pkt, tracer):\n"
        "    tracer.on_enqueue('nic0', pkt, 0)\n"
    ),
    # enqueue/dequeue are exempt: appending to the managed queue is the job.
    "SIM010": (
        "class Port:\n"
        "    def enqueue(self, pkt):\n"
        "        self._queue.append(pkt)\n"
    ),
    # A len() bound plus clear-on-full is the canonical bounded memo.
    "SIM011": (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        if len(self._tx_cache) >= 256:\n"
        "            self._tx_cache.clear()\n"
        "        self._tx_cache[size] = self.compute(size)\n"
    ),
}


@pytest.mark.parametrize("rule", sorted(RULES))
def test_bad_fixture_fires(rule):
    assert rule in rules_in(BAD_FIXTURES[rule]), f"{rule} must fire"


@pytest.mark.parametrize("rule", sorted(RULES))
def test_good_fixture_clean(rule):
    assert rule not in rules_in(GOOD_FIXTURES[rule]), f"{rule} false positive"


# ----------------------------------------------------------------------
# Rule-specific behavior beyond the minimal fixtures
# ----------------------------------------------------------------------
def test_sim001_resolves_from_imports_and_datetime():
    assert rules_in(
        "from time import perf_counter\n\ndef f():\n    return perf_counter()\n"
    ) == ["SIM001"]
    assert rules_in(
        "from datetime import datetime\n\ndef f():\n    return datetime.now()\n"
    ) == ["SIM001"]


def test_sim002_allows_seeded_instances():
    source = (
        "import random\n\n"
        "def f(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.random()\n"
    )
    assert rules_in(source) == []


def test_sim003_matches_attribute_and_subscript_tags():
    source = (
        "class W:\n"
        "    def f(self, qos, t):\n"
        "        return self._last_finish[qos] == t\n"
    )
    assert rules_in(source, NET_PATH) == ["SIM003"]
    # Ordering comparisons on tags are the intended idiom — never flagged.
    assert rules_in("def f(tag, vt):\n    return tag > vt\n") == []


def test_sim004_requires_scheduling_in_body():
    benign = "def f(hosts):\n    for h in set(hosts):\n        h.reset()\n"
    assert rules_in(benign) == []
    keys = (
        "def f(sim, d):\n"
        "    for k in d.keys():\n"
        "        sim.post(0, k)\n"
    )
    assert rules_in(keys) == ["SIM004"]


def test_sim006_flags_substream_at_module_scope():
    source = "from repro.sim.rng import substream\n\nR = substream(0, 'x')\n"
    assert rules_in(source) == ["SIM006"]


def test_sim008_accepts_keyword_only_seed():
    source = "def run_point(point, *, seed):\n    return {}\n"
    assert rules_in(source) == []


def test_sim009_only_flags_the_builtin_in_sim_domain():
    # A method named print on some object is not console I/O.
    assert rules_in("def f(doc):\n    doc.print()\n") == []
    # Sim-domain only: general and host code may print freely.
    assert rules_in(BAD_FIXTURES["SIM009"], GENERAL_PATH) == []
    assert "SIM009" in rules_in(BAD_FIXTURES["SIM009"], NET_PATH)


def test_sim010_scoping_and_shapes():
    bad = BAD_FIXTURES["SIM010"]
    # Sim-domain only: the observability layer and tests retain on purpose.
    assert rules_in(bad, GENERAL_PATH) == []
    assert rules_in(bad, HOST_PATH) == []
    assert "SIM010" in rules_in(bad, NET_PATH)
    # extend() is accumulation too, and record_* counts as per-event.
    ext = (
        "class S:\n"
        "    def record_sample(self, xs):\n"
        "        self._samples.extend(xs)\n"
    )
    assert rules_in(ext) == ["SIM010"]
    # Local lists and non-handler methods are fine.
    local = (
        "class S:\n"
        "    def on_ack(self, x):\n"
        "        out = []\n"
        "        out.append(x)\n"
        "        return out\n"
    )
    assert rules_in(local) == []
    rebuild = (
        "class S:\n"
        "    def rebuild(self, x):\n"
        "        self._items.append(x)\n"
    )
    assert rules_in(rebuild) == []


def test_sim011_scoping_aliases_and_bounds():
    bad = BAD_FIXTURES["SIM011"]
    # Sim-domain only: host tools and tests may memoize freely.
    assert rules_in(bad, GENERAL_PATH) == []
    assert rules_in(bad, HOST_PATH) == []
    assert "SIM011" in rules_in(bad, NET_PATH)
    # A local alias of the cache attribute is followed, both for the
    # store and for the eviction evidence.
    aliased_bad = (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        cache = self._ser_cache\n"
        "        tx = cache.get(size)\n"
        "        if tx is None:\n"
        "            tx = cache[size] = self.compute(size)\n"
        "        return tx\n"
    )
    assert rules_in(aliased_bad, NET_PATH) == ["SIM011"]
    aliased_good = (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        cache = self._ser_cache\n"
        "        tx = cache.get(size)\n"
        "        if tx is None:\n"
        "            tx = self.compute(size)\n"
        "            if len(cache) >= 256:\n"
        "                cache.clear()\n"
        "            cache[size] = tx\n"
        "        return tx\n"
    )
    assert rules_in(aliased_good, NET_PATH) == []
    # del-based eviction and whole-table rebuilds both count as bounds.
    del_good = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._memo[k] = self.compute(k)\n"
        "        del self._memo[next(iter(self._memo))]\n"
    )
    assert rules_in(del_good, NET_PATH) == []
    rebuild_good = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._memo = {}\n"
        "        self._memo[k] = self.compute(k)\n"
    )
    assert rules_in(rebuild_good, NET_PATH) == []
    # Non-cache-named dicts are out of scope for this heuristic.
    other = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._routes[k] = self.compute(k)\n"
    )
    assert rules_in(other, NET_PATH) == []
    # Eviction in a *different* method does not excuse the store.
    split = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._memo[k] = self.compute(k)\n"
        "    def reset(self):\n"
        "        self._memo.clear()\n"
    )
    assert rules_in(split, NET_PATH) == ["SIM011"]


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def test_per_line_suppression_silences_named_rule():
    source = (
        "import time\n\n"
        "def now():\n"
        "    return time.time()  # simlint: ignore[SIM001]\n"
    )
    assert rules_in(source) == []


def test_suppression_of_other_rule_keeps_finding():
    source = (
        "import time\n\n"
        "def now():\n"
        "    return time.time()  # simlint: ignore[SIM005]\n"
    )
    assert rules_in(source) == ["SIM001"]


def test_bare_suppression_silences_every_rule_on_line():
    source = "def collect(acc=[]):  # simlint: ignore\n    return acc\n"
    assert rules_in(source, GENERAL_PATH) == []


def test_suppression_accepts_multiple_rules():
    source = (
        "import time\n\n"
        "def now(acc=[]):  # simlint: ignore[SIM005]\n"
        "    return time.time()  # simlint: ignore[SIM001, SIM002]\n"
    )
    assert rules_in(source) == []


# ----------------------------------------------------------------------
# Scoping: sim-domain vs host-side allowlist vs general code
# ----------------------------------------------------------------------
def test_classify_paths():
    assert classify("src/repro/net/queues.py") == "sim"
    assert classify("src/repro/runner/pool.py") == "host"
    assert classify("src/repro/cli.py") == "host"
    assert classify("src/repro/lint/runner.py") == "host"
    assert classify("tests/test_lint.py") == "general"
    assert classify("src/repro/experiments/fig08.py") == "general"


def test_host_allowlist_exempts_wall_clock_and_global_random():
    assert rules_in(BAD_FIXTURES["SIM001"], HOST_PATH) == []
    assert rules_in(BAD_FIXTURES["SIM002"], HOST_PATH) == []
    assert rules_in(BAD_FIXTURES["SIM006"], HOST_PATH) == []
    assert rules_in(BAD_FIXTURES["SIM009"], HOST_PATH) == []
    # ...but generic bug rules still apply to host code.
    assert rules_in(BAD_FIXTURES["SIM005"], HOST_PATH) == ["SIM005"]


def test_wall_clock_not_flagged_outside_sim_domain():
    # SIM001 is sim-domain-only: experiments and tests may time things.
    assert rules_in(BAD_FIXTURES["SIM001"], GENERAL_PATH) == []
    # SIM002 still applies outside the sim domain (unseeded randomness
    # in an experiment breaks sweep reproducibility all the same).
    assert rules_in(BAD_FIXTURES["SIM002"], GENERAL_PATH) == ["SIM002"]


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_parse_rule_list_rejects_unknown():
    assert parse_rule_list("SIM001, SIM005") == ("SIM001", "SIM005")
    with pytest.raises(ValueError):
        parse_rule_list("SIM999")


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    assert lint_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out and "bad.py" in out

    bad.write_text("def f(sim):\n    return sim.now\n")
    assert lint_main([str(tmp_path)]) == 0

    bad.write_text("def f(:\n")
    assert lint_main([str(tmp_path)]) == 2


def test_cli_explain_lists_all_rules(capsys):
    assert lint_main(["--explain"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# ----------------------------------------------------------------------
# The repo gate
# ----------------------------------------------------------------------
def test_repo_lints_clean():
    findings, errors = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    )
    assert errors == []
    assert findings == [], "\n".join(f.render() for f in findings)
