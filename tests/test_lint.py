"""simlint fixture tests: every rule must fire on a minimal bad snippet
and stay quiet on the corresponding good one, suppression comments must
silence exactly the named rule, and the host-side allowlist must exempt
orchestration code from the determinism rules.

The whole-program rules (SIM012/SIM013) additionally get cross-module
fixtures spanning two files, the asyncio rules (SIM014–SIM016) get
known-race/known-clean shapes lifted from ``repro.live``, and the
runner machinery — structured SIM000 analysis errors, the incremental
cache, the committed baseline, SARIF output — is tested directly.

The final test is the repo gate: ``src`` and ``tests`` must lint clean,
which is what keeps ``python -m repro lint src tests`` exiting 0 in CI.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    LintCache,
    analyze_paths,
    classify,
    lint_paths,
    lint_source,
    suppressed_rules,
)
from repro.lint.runner import main as lint_main
from repro.lint.rules import parse_rule_list

SIM_PATH = "src/repro/sim/fixture.py"
NET_PATH = "src/repro/net/fixture.py"
LIVE_PATH = "src/repro/live/fixture.py"
GENERAL_PATH = "tests/fixture.py"
HOST_PATH = "src/repro/runner/fixture.py"

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_in(source: str, path: str = SIM_PATH):
    return [f.rule for f in lint_source(source, path)]


# ----------------------------------------------------------------------
# One bad + one good fixture per rule
# ----------------------------------------------------------------------
BAD_FIXTURES = {
    "SIM000": "def f(:\n",
    "SIM001": "import time\n\ndef now():\n    return time.time()\n",
    "SIM002": "import random\n\ndef draw():\n    return random.random()\n",
    "SIM003": (
        "def stale(tag, head_tag):\n"
        "    return tag == head_tag\n"
    ),
    "SIM004": (
        "def kick(sim, hosts):\n"
        "    for h in set(hosts):\n"
        "        sim.schedule(1, h.start)\n"
    ),
    "SIM005": "def collect(acc=[]):\n    return acc\n",
    "SIM006": "import random\n\n_RNG = random.Random(0)\n",
    "SIM007": (
        "def finish(sim, cleanup):\n"
        "    sim.stop()\n"
        "    sim.post(0, cleanup)\n"
    ),
    "SIM008": "def run_point(point):\n    return {}\n",
    "SIM009": (
        "def on_deliver(pkt):\n"
        "    print('delivered', pkt.serial)\n"
    ),
    "SIM010": (
        "class Port:\n"
        "    def on_deliver(self, pkt):\n"
        "        self.delivered.append(pkt)\n"
    ),
    "SIM011": (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        self._tx_cache[size] = self.compute(size)\n"
    ),
    # The helper (not the caller) reads the wall clock; per-module
    # visitors cannot connect the two — the whole-program pass can.
    "SIM012": (
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()\n\n"
        "class Kernel:\n"
        "    def start(self):\n"
        "        self.t0 = stamp()\n"
    ),
    "SIM013": (
        "import random\n\n"
        "def draw():\n"
        "    rng = random.Random()\n"
        "    return rng.random()\n"
    ),
    "SIM014": (
        "import time\n\n"
        "async def pump():\n"
        "    time.sleep(0.1)\n"
    ),
    "SIM015": (
        "class Counter:\n"
        "    async def bump(self):\n"
        "        current = self._total\n"
        "        await self._flush()\n"
        "        self._total = current + 1\n"
    ),
    "SIM016": (
        "async def work():\n"
        "    return 1\n\n"
        "async def main():\n"
        "    work()\n"
    ),
}

GOOD_FIXTURES = {
    "SIM000": "def f():\n    return 1\n",
    "SIM001": (
        "def now(sim):\n"
        "    return sim.now\n"
    ),
    "SIM002": (
        "from repro.sim.rng import make_rng\n\n"
        "def draw(seed):\n"
        "    return make_rng(seed).random()\n"
    ),
    "SIM003": (
        "def stale(tag_queue, serial):\n"
        "    return tag_queue[0][1] != serial\n"
    ),
    "SIM004": (
        "def kick(sim, hosts):\n"
        "    for h in sorted(set(hosts)):\n"
        "        sim.schedule(1, h.start)\n"
    ),
    "SIM005": (
        "def collect(acc=None):\n"
        "    return [] if acc is None else acc\n"
    ),
    "SIM006": (
        "import random\n\n"
        "def fresh(seed):\n"
        "    return random.Random(seed)\n"
    ),
    "SIM007": (
        "def finish(sim, cleanup):\n"
        "    sim.post(0, cleanup)\n"
        "    sim.stop()\n"
    ),
    "SIM008": "def run_point(point, seed):\n    return {}\n",
    "SIM009": (
        "def on_deliver(pkt, tracer):\n"
        "    tracer.on_enqueue('nic0', pkt, 0)\n"
    ),
    # enqueue/dequeue are exempt: appending to the managed queue is the job.
    "SIM010": (
        "class Port:\n"
        "    def enqueue(self, pkt):\n"
        "        self._queue.append(pkt)\n"
    ),
    # A len() bound plus clear-on-full is the canonical bounded memo.
    "SIM011": (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        if len(self._tx_cache) >= 256:\n"
        "            self._tx_cache.clear()\n"
        "        self._tx_cache[size] = self.compute(size)\n"
    ),
    # Injected-clock calls are unresolvable by design: the injection
    # site, not the protocol call, is where taint is policed.
    "SIM012": (
        "class Kernel:\n"
        "    def __init__(self, clock):\n"
        "        self._clock = clock\n"
        "    def tick(self):\n"
        "        return self._clock.now_ns()\n"
    ),
    "SIM013": (
        "import random\n\n"
        "def draw(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.random()\n"
    ),
    "SIM014": (
        "import asyncio\n\n"
        "async def pump():\n"
        "    await asyncio.sleep(0.1)\n"
    ),
    # Holding a lock across the await clears the race.
    "SIM015": (
        "class Counter:\n"
        "    async def bump(self):\n"
        "        async with self._lock:\n"
        "            current = self._total\n"
        "            await self._flush()\n"
        "            self._total = current + 1\n"
    ),
    "SIM016": (
        "async def work():\n"
        "    return 1\n\n"
        "async def main():\n"
        "    await work()\n"
    ),
}


@pytest.mark.parametrize("rule", sorted(RULES))
def test_bad_fixture_fires(rule):
    assert rule in rules_in(BAD_FIXTURES[rule]), f"{rule} must fire"


@pytest.mark.parametrize("rule", sorted(RULES))
def test_good_fixture_clean(rule):
    assert rule not in rules_in(GOOD_FIXTURES[rule]), f"{rule} false positive"


# ----------------------------------------------------------------------
# Rule-specific behavior beyond the minimal fixtures
# ----------------------------------------------------------------------
def test_sim001_resolves_from_imports_and_datetime():
    assert rules_in(
        "from time import perf_counter\n\ndef f():\n    return perf_counter()\n"
    ) == ["SIM001"]
    assert rules_in(
        "from datetime import datetime\n\ndef f():\n    return datetime.now()\n"
    ) == ["SIM001"]


def test_sim002_allows_seeded_instances():
    source = (
        "import random\n\n"
        "def f(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.random()\n"
    )
    assert rules_in(source) == []


def test_sim003_matches_attribute_and_subscript_tags():
    source = (
        "class W:\n"
        "    def f(self, qos, t):\n"
        "        return self._last_finish[qos] == t\n"
    )
    assert rules_in(source, NET_PATH) == ["SIM003"]
    # Ordering comparisons on tags are the intended idiom — never flagged.
    assert rules_in("def f(tag, vt):\n    return tag > vt\n") == []


def test_sim004_requires_scheduling_in_body():
    benign = "def f(hosts):\n    for h in set(hosts):\n        h.reset()\n"
    assert rules_in(benign) == []
    keys = (
        "def f(sim, d):\n"
        "    for k in d.keys():\n"
        "        sim.post(0, k)\n"
    )
    assert rules_in(keys) == ["SIM004"]


def test_sim006_flags_substream_at_module_scope():
    source = "from repro.sim.rng import substream\n\nR = substream(0, 'x')\n"
    assert rules_in(source) == ["SIM006"]


def test_sim008_accepts_keyword_only_seed():
    source = "def run_point(point, *, seed):\n    return {}\n"
    assert rules_in(source) == []


def test_sim009_only_flags_the_builtin_in_sim_domain():
    # A method named print on some object is not console I/O.
    assert rules_in("def f(doc):\n    doc.print()\n") == []
    # Sim-domain only: general and host code may print freely.
    assert rules_in(BAD_FIXTURES["SIM009"], GENERAL_PATH) == []
    assert "SIM009" in rules_in(BAD_FIXTURES["SIM009"], NET_PATH)


def test_sim010_scoping_and_shapes():
    bad = BAD_FIXTURES["SIM010"]
    # Sim-domain only: the observability layer and tests retain on purpose.
    assert rules_in(bad, GENERAL_PATH) == []
    assert rules_in(bad, HOST_PATH) == []
    assert "SIM010" in rules_in(bad, NET_PATH)
    # extend() is accumulation too, and record_* counts as per-event.
    ext = (
        "class S:\n"
        "    def record_sample(self, xs):\n"
        "        self._samples.extend(xs)\n"
    )
    assert rules_in(ext) == ["SIM010"]
    # Local lists and non-handler methods are fine.
    local = (
        "class S:\n"
        "    def on_ack(self, x):\n"
        "        out = []\n"
        "        out.append(x)\n"
        "        return out\n"
    )
    assert rules_in(local) == []
    rebuild = (
        "class S:\n"
        "    def rebuild(self, x):\n"
        "        self._items.append(x)\n"
    )
    assert rules_in(rebuild) == []


def test_sim011_scoping_aliases_and_bounds():
    bad = BAD_FIXTURES["SIM011"]
    # Sim-domain only: host tools and tests may memoize freely.
    assert rules_in(bad, GENERAL_PATH) == []
    assert rules_in(bad, HOST_PATH) == []
    assert "SIM011" in rules_in(bad, NET_PATH)
    # A local alias of the cache attribute is followed, both for the
    # store and for the eviction evidence.
    aliased_bad = (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        cache = self._ser_cache\n"
        "        tx = cache.get(size)\n"
        "        if tx is None:\n"
        "            tx = cache[size] = self.compute(size)\n"
        "        return tx\n"
    )
    assert rules_in(aliased_bad, NET_PATH) == ["SIM011"]
    aliased_good = (
        "class Port:\n"
        "    def lookup(self, size):\n"
        "        cache = self._ser_cache\n"
        "        tx = cache.get(size)\n"
        "        if tx is None:\n"
        "            tx = self.compute(size)\n"
        "            if len(cache) >= 256:\n"
        "                cache.clear()\n"
        "            cache[size] = tx\n"
        "        return tx\n"
    )
    assert rules_in(aliased_good, NET_PATH) == []
    # del-based eviction and whole-table rebuilds both count as bounds.
    del_good = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._memo[k] = self.compute(k)\n"
        "        del self._memo[next(iter(self._memo))]\n"
    )
    assert rules_in(del_good, NET_PATH) == []
    rebuild_good = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._memo = {}\n"
        "        self._memo[k] = self.compute(k)\n"
    )
    assert rules_in(rebuild_good, NET_PATH) == []
    # Non-cache-named dicts are out of scope for this heuristic.
    other = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._routes[k] = self.compute(k)\n"
    )
    assert rules_in(other, NET_PATH) == []
    # Eviction in a *different* method does not excuse the store.
    split = (
        "class Port:\n"
        "    def lookup(self, k):\n"
        "        self._memo[k] = self.compute(k)\n"
        "    def reset(self):\n"
        "        self._memo.clear()\n"
    )
    assert rules_in(split, NET_PATH) == ["SIM011"]


# ----------------------------------------------------------------------
# SIM012/SIM013: whole-program taint
# ----------------------------------------------------------------------
def _make_sim_package(tmp_path):
    """A ``repro/sim`` package rooted at a tmp dir (classified "sim")."""
    package = tmp_path / "repro" / "sim"
    package.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (package / "__init__.py").write_text("")
    return package


def test_sim012_cross_module_taint(tmp_path):
    (tmp_path / "helpers.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    package = _make_sim_package(tmp_path)
    (package / "kernel.py").write_text(
        "from helpers import stamp\n\n\n"
        "class Kernel:\n"
        "    def start(self):\n"
        "        self.t0 = stamp()\n"
    )
    findings, errors = lint_paths([str(tmp_path)])
    assert errors == []
    sim012 = [f for f in findings if f.rule == "SIM012"]
    assert sim012, "cross-module wall-clock taint must fire"
    assert all(f.path.endswith("kernel.py") for f in sim012)
    # The provenance names the tainted helper in the message.
    assert any("helpers.stamp" in f.message for f in sim012)


def test_sim012_tainted_argument_crossing_into_sim(tmp_path):
    package = _make_sim_package(tmp_path)
    (package / "engine.py").write_text(
        "class Engine:\n"
        "    def __init__(self, t0):\n"
        "        self.t0 = t0\n\n\n"
        "def make(t0):\n"
        "    return Engine(t0)\n"
    )
    (tmp_path / "driver.py").write_text(
        "import time\n\n"
        "from repro.sim.engine import make\n\n\n"
        "def main():\n"
        "    t = time.time()\n"
        "    return make(t)\n"
    )
    findings, errors = lint_paths([str(tmp_path)])
    assert errors == []
    sim012 = [f for f in findings if f.rule == "SIM012"]
    # The finding lands at the boundary crossing in the *driver*, even
    # though the driver itself is host-side code free to read clocks.
    assert sim012 and all(f.path.endswith("driver.py") for f in sim012)


def test_sim012_wall_clock_backed_class_handle():
    source = (
        "import time\n\n"
        "class WallClock:\n"
        "    def now_ns(self):\n"
        "        return time.time_ns()\n\n"
        "class Kernel:\n"
        "    def start(self):\n"
        "        self._clock = WallClock()\n"
    )
    assert "SIM012" in rules_in(source)


def test_sim012_does_not_target_live(tmp_path):
    # repro/live is wall-clock by design: helpers returning OS time are
    # its job (SIM001 polices the raw reads via clock.py suppressions).
    source = (
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()  # simlint: ignore[SIM001]\n\n"
        "def log_now():\n"
        "    return stamp()\n"
    )
    assert "SIM012" not in rules_in(source, LIVE_PATH)


def test_sim013_through_helper_and_threaded_seed():
    bad = (
        "import random\n\n"
        "def fresh():\n"
        "    return random.Random(1234)\n\n"
        "def draw():\n"
        "    rng = fresh()\n"
        "    return rng.random()\n"
    )
    # Fires at the constant-seed construction and at the helper call.
    assert rules_in(bad).count("SIM013") >= 2
    good = (
        "import random\n\n"
        "def fresh(seed):\n"
        "    return random.Random(seed)\n\n"
        "def draw(seed):\n"
        "    rng = fresh(seed)\n"
        "    return rng.random()\n"
    )
    assert "SIM013" not in rules_in(good)


def test_sim013_system_random_and_scope():
    bad = (
        "import random\n\n"
        "def draw():\n"
        "    return random.SystemRandom().random()\n"
    )
    assert "SIM013" in rules_in(bad)
    # General code (tests, experiments) may build fixed-seed RNGs.
    assert "SIM013" not in rules_in(BAD_FIXTURES["SIM013"], GENERAL_PATH)


# ----------------------------------------------------------------------
# SIM014–SIM016: asyncio rules
# ----------------------------------------------------------------------
def test_sim014_blocking_shapes():
    file_io = (
        "import pathlib\n\n"
        "async def load(p):\n"
        "    return pathlib.Path(p).read_text()\n"
    )
    assert "SIM014" in rules_in(file_io)
    subprocess_run = (
        "import subprocess\n\n"
        "async def shell(cmd):\n"
        "    return subprocess.run(cmd)\n"
    )
    assert "SIM014" in rules_in(subprocess_run)
    # Blocking calls in *sync* functions are not this rule's business.
    sync = "import time\n\ndef pause():\n    time.sleep(1)\n"
    assert "SIM014" not in rules_in(sync)


def test_sim015_known_race_and_known_clean_shapes():
    # The exact shape of the AdmissionClient.aclose race this rule
    # caught in repro/live: read the task handle, await its cancel,
    # write the handle back — all without a lock.
    race = (
        "class Client:\n"
        "    async def aclose(self):\n"
        "        if self._task is not None:\n"
        "            self._task.cancel()\n"
        "            await self._task\n"
        "            self._task = None\n"
    )
    assert "SIM015" in rules_in(race, LIVE_PATH)
    # The fix idiom: swap the handle out atomically, then await.
    swap = (
        "class Client:\n"
        "    async def aclose(self):\n"
        "        task, self._task = self._task, None\n"
        "        if task is not None:\n"
        "            task.cancel()\n"
        "            await task\n"
    )
    assert "SIM015" not in rules_in(swap, LIVE_PATH)
    # Read-modify-write in one statement never straddles an await.
    atomic = (
        "class Counter:\n"
        "    async def bump(self):\n"
        "        await self._flush()\n"
        "        self._total += 1\n"
    )
    assert "SIM015" not in rules_in(atomic, LIVE_PATH)
    # Method calls on shared state are uses, not stale reads.
    queue_use = (
        "class Server:\n"
        "    async def drain(self):\n"
        "        self._queue.popleft()\n"
        "        await self._work_ready.wait()\n"
        "        self._queue = None\n"
    )
    assert "SIM015" not in rules_in(queue_use, LIVE_PATH)


def test_sim016_discarded_task_handle():
    discarded = (
        "import asyncio\n\n"
        "async def go(coro):\n"
        "    asyncio.create_task(coro)\n"
    )
    assert "SIM016" in rules_in(discarded)
    stored = (
        "import asyncio\n\n"
        "async def go(coro):\n"
        "    task = asyncio.create_task(coro)\n"
        "    return task\n"
    )
    assert "SIM016" not in rules_in(stored)
    # Un-awaited self-method coroutines fire too.
    method = (
        "class S:\n"
        "    async def pump(self):\n"
        "        return 1\n"
        "    async def run(self):\n"
        "        self.pump()\n"
    )
    assert "SIM016" in rules_in(method)


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def test_per_line_suppression_silences_named_rule():
    source = (
        "import time\n\n"
        "def now():\n"
        "    return time.time()  # simlint: ignore[SIM001]\n"
    )
    assert rules_in(source) == []


def test_suppression_of_other_rule_keeps_finding():
    source = (
        "import time\n\n"
        "def now():\n"
        "    return time.time()  # simlint: ignore[SIM005]\n"
    )
    assert rules_in(source) == ["SIM001"]


def test_bare_suppression_silences_every_rule_on_line():
    source = "def collect(acc=[]):  # simlint: ignore\n    return acc\n"
    assert rules_in(source, GENERAL_PATH) == []


def test_suppression_accepts_multiple_rules():
    source = (
        "import time\n\n"
        "def now(acc=[]):  # simlint: ignore[SIM005]\n"
        "    return time.time()  # simlint: ignore[SIM001, SIM002]\n"
    )
    assert rules_in(source) == []


def test_suppressed_rules_parse():
    # No comment -> empty set; bare ignore -> None (everything).
    assert suppressed_rules("x = 1") == set()
    assert suppressed_rules("x = 1  # simlint: ignore") is None
    # One or more comma-separated ids, whitespace-tolerant,
    # case-normalized.
    assert suppressed_rules("x  # simlint: ignore[SIM010,SIM011]") == {
        "SIM010",
        "SIM011",
    }
    assert suppressed_rules("x  # simlint: ignore[SIM001, SIM005]") == {
        "SIM001",
        "SIM005",
    }
    assert suppressed_rules("# simlint: ignore[sim003]") == {"SIM003"}


# ----------------------------------------------------------------------
# Scoping: sim-domain vs host-side allowlist vs general code
# ----------------------------------------------------------------------
def test_classify_paths():
    assert classify("src/repro/net/queues.py") == "sim"
    assert classify("src/repro/runner/pool.py") == "host"
    assert classify("src/repro/cli.py") == "host"
    assert classify("src/repro/lint/runner.py") == "host"
    assert classify("tests/test_lint.py") == "general"
    assert classify("src/repro/experiments/fig08.py") == "general"


def test_host_allowlist_exempts_wall_clock_and_global_random():
    assert rules_in(BAD_FIXTURES["SIM001"], HOST_PATH) == []
    assert rules_in(BAD_FIXTURES["SIM002"], HOST_PATH) == []
    assert rules_in(BAD_FIXTURES["SIM006"], HOST_PATH) == []
    assert rules_in(BAD_FIXTURES["SIM009"], HOST_PATH) == []
    # ...but generic bug rules still apply to host code.
    assert rules_in(BAD_FIXTURES["SIM005"], HOST_PATH) == ["SIM005"]


def test_wall_clock_not_flagged_outside_sim_domain():
    # SIM001 is sim-domain-only: experiments and tests may time things.
    assert rules_in(BAD_FIXTURES["SIM001"], GENERAL_PATH) == []
    # SIM002 still applies outside the sim domain (unseeded randomness
    # in an experiment breaks sweep reproducibility all the same).
    assert rules_in(BAD_FIXTURES["SIM002"], GENERAL_PATH) == ["SIM002"]


# ----------------------------------------------------------------------
# SIM000: analysis errors are findings, not crashes
# ----------------------------------------------------------------------
def test_syntax_error_is_structured_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "ok.py").write_text("import random\n\n\ndef f():\n    return 1\n")
    report = analyze_paths([str(tmp_path)])
    sim000 = [f for f in report.findings if f.rule == "SIM000"]
    assert len(sim000) == 1
    finding = sim000[0]
    assert finding.path.endswith("broken.py")
    assert finding.line == 1
    assert "syntax error" in finding.message
    assert report.errors and "broken.py" in report.errors[0]
    # The broken file did not abort the run: both files were analyzed.
    assert report.stats["parses"] == 2


def test_lint_source_returns_sim000_for_syntax_errors():
    findings = lint_source("def f(:\n", GENERAL_PATH)
    assert [f.rule for f in findings] == ["SIM000"]


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
def _write_cache_tree(tmp_path):
    code = tmp_path / "code"
    code.mkdir()
    (code / "a.py").write_text(
        "import random\n\n\ndef draw():\n    return random.random()\n"
    )
    (code / "b.py").write_text("def ok():\n    return 1\n")
    return code


def test_cache_hit_miss_and_selective_reparse(tmp_path):
    code = _write_cache_tree(tmp_path)
    cache_dir = tmp_path / "cache"

    cold = analyze_paths([str(code)], cache=LintCache(cache_dir))
    assert cold.stats["parses"] == 2
    assert cold.stats["cache_hits"] == 0
    assert cold.stats["cache_misses"] == 2

    warm = analyze_paths([str(code)], cache=LintCache(cache_dir))
    assert warm.stats["parses"] == 0
    assert warm.stats["cache_hits"] == 2
    assert [f.render() for f in warm.findings] == [
        f.render() for f in cold.findings
    ]

    # Changing one file re-parses only that file.
    (code / "a.py").write_text("def quiet():\n    return 2\n")
    mixed = analyze_paths([str(code)], cache=LintCache(cache_dir))
    assert mixed.stats["parses"] == 1
    assert mixed.stats["cache_hits"] == 1
    assert mixed.findings == []


def test_cache_invalidated_by_ruleset_version(tmp_path, monkeypatch):
    code = _write_cache_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    analyze_paths([str(code)], cache=LintCache(cache_dir))

    # A rule-set bump must discard every cached entry wholesale.
    monkeypatch.setattr("repro.lint.cache.RULESET_VERSION", "0.0.0-test")
    bumped = analyze_paths([str(code)], cache=LintCache(cache_dir))
    assert bumped.stats["parses"] == 2
    assert bumped.stats["cache_hits"] == 0


def _stats_from_stderr(capsys):
    err = capsys.readouterr().err
    for line in err.splitlines():
        if line.startswith("simlint stats: "):
            return json.loads(line[len("simlint stats: "):])
    raise AssertionError(f"no stats line in stderr: {err!r}")


def test_cli_no_cache_forces_full_reanalysis(tmp_path, capsys):
    code = _write_cache_tree(tmp_path)
    (code / "a.py").write_text("def quiet():\n    return 2\n")
    cache_dir = str(tmp_path / "cache")

    assert lint_main([str(code), "--cache-dir", cache_dir, "--stats"]) == 0
    assert _stats_from_stderr(capsys)["parses"] == 2
    assert lint_main([str(code), "--cache-dir", cache_dir, "--stats"]) == 0
    assert _stats_from_stderr(capsys)["parses"] == 0
    # --no-cache bypasses the warm cache entirely.
    assert lint_main([str(code), "--no-cache", "--stats"]) == 0
    assert _stats_from_stderr(capsys)["parses"] == 2


def test_warm_repo_lint_performs_zero_reparses(tmp_path, monkeypatch):
    """Acceptance gate: a warm-cache repo lint re-parses nothing."""
    paths = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    cache_dir = tmp_path / "cache"
    cold = analyze_paths(paths, cache=LintCache(cache_dir))
    assert cold.stats["parses"] == cold.stats["files"]

    # Belt and braces: beyond the counter, make any ast.parse call blow
    # up — the warm run must replay cached results and IRs only.
    def _no_parse(*args, **kwargs):
        raise AssertionError("warm cache run must not re-parse")

    monkeypatch.setattr(ast, "parse", _no_parse)
    warm = analyze_paths(paths, cache=LintCache(cache_dir))
    assert warm.stats["parses"] == 0
    assert warm.stats["cache_hits"] == warm.stats["files"]
    assert [f.render() for f in warm.findings] == [
        f.render() for f in cold.findings
    ]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_grandfathers_known_findings(tmp_path):
    code = tmp_path / "code"
    code.mkdir()
    target = code / "legacy.py"
    target.write_text("import random\n\n\ndef f():\n    return random.random()\n")
    baseline = tmp_path / "baseline.json"

    updated = analyze_paths(
        [str(code)], baseline_path=baseline, update_baseline=True
    )
    assert updated.stats["baselined"] == 1
    assert updated.findings == []
    entries = json.loads(baseline.read_text())["entries"]
    assert [e["rule"] for e in entries] == ["SIM002"]

    grandfathered = analyze_paths([str(code)], baseline_path=baseline)
    assert grandfathered.findings == []
    assert grandfathered.stats["baseline_suppressed"] == 1

    # Fingerprints survive line drift: shifting the finding down two
    # lines must not resurrect it...
    target.write_text(
        "# a comment\n# another\nimport random\n\n\n"
        "def f():\n    return random.random()\n"
    )
    drifted = analyze_paths([str(code)], baseline_path=baseline)
    assert drifted.findings == []

    # ...but a genuinely new finding still surfaces.
    target.write_text(
        "import random\n\n\ndef f():\n"
        "    return random.random()\n\n\ndef g():\n"
        "    return random.randint(0, 3)\n"
    )
    fresh = analyze_paths([str(code)], baseline_path=baseline)
    assert [f.rule for f in fresh.findings] == ["SIM002"]
    assert fresh.findings[0].line == 9
    assert fresh.stats["baseline_suppressed"] == 1


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
def test_sarif_document_shape(tmp_path):
    code = tmp_path / "code"
    code.mkdir()
    (code / "x.py").write_text(
        "import random\n\n\ndef f():\n    return random.random()\n"
    )
    out = tmp_path / "lint.sarif"
    exit_code = lint_main(
        [str(code), "--no-cache", "--format", "sarif", "--output", str(out)]
    )
    assert exit_code == 1  # findings still gate via the exit code

    document = json.loads(out.read_text())
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simlint"
    assert driver["version"]
    assert set(RULES) <= {rule["id"] for rule in driver["rules"]}
    result = run["results"][0]
    assert result["ruleId"] == "SIM002"
    assert result["level"] == "warning"
    assert result["message"]["text"]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("x.py")
    assert location["region"]["startLine"] == 5
    assert location["region"]["startColumn"] >= 1
    assert result["partialFingerprints"]["simlintFingerprint/v1"]


def test_sarif_includes_analysis_errors_as_errors(tmp_path):
    code = tmp_path / "code"
    code.mkdir()
    (code / "broken.py").write_text("def f(:\n")
    out = tmp_path / "lint.sarif"
    exit_code = lint_main(
        [str(code), "--no-cache", "--format", "sarif", "--output", str(out)]
    )
    assert exit_code == 2
    results = json.loads(out.read_text())["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["SIM000"]
    assert results[0]["level"] == "error"


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_parse_rule_list_rejects_unknown():
    assert parse_rule_list("SIM001, SIM005") == ("SIM001", "SIM005")
    with pytest.raises(ValueError):
        parse_rule_list("SIM999")


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    assert lint_main([str(tmp_path), "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out and "bad.py" in out

    bad.write_text("def f(sim):\n    return sim.now\n")
    assert lint_main([str(tmp_path), "--no-cache"]) == 0

    bad.write_text("def f(:\n")
    assert lint_main([str(tmp_path), "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert "SIM000" in err and "bad.py" in err


def test_cli_explain_lists_all_rules(capsys):
    assert lint_main(["--explain"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# ----------------------------------------------------------------------
# The repo gate
# ----------------------------------------------------------------------
def test_repo_lints_clean():
    findings, errors = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    )
    assert errors == []
    assert findings == [], "\n".join(f.render() for f in findings)
