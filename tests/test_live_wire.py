"""The live runtime's length-prefixed wire format.

Framing is pure (no clocks, no RNG), so these tests drive it directly
through an in-memory :class:`asyncio.StreamReader`: well-formed frames
round-trip exactly, bodies are consumed without corrupting frame
boundaries, and every malformed-input class maps to a typed
:class:`FrameError` (or ``IncompleteReadError`` for mid-frame EOF,
which the connection layers treat as peer loss, not corruption).
"""

import asyncio
import json
import struct

import pytest

from repro.live.wire import (
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    FrameError,
    Request,
    Response,
    decode_header,
    encode_frame,
    read_frame,
)

REQUEST = Request(
    request_id=3,
    client="c0",
    qos_requested=0,
    qos_run=1,
    downgraded=True,
    payload_bytes=4096,
    size_mtus=1,
    attempt=2,
    issued_ns=123_456,
)

RESPONSE = Response(request_id=3, status="ok", queue_ns=10, service_ns=20)


def read_from_bytes(payload: bytes):
    """Parse one frame out of raw bytes via a fed StreamReader."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(_run())


class TestRoundTrip:
    def test_request_round_trips(self):
        kind, header = read_from_bytes(encode_frame(REQUEST))
        assert kind == KIND_REQUEST
        assert decode_header(kind, header, Request) == REQUEST

    def test_response_round_trips(self):
        kind, header = read_from_bytes(encode_frame(RESPONSE))
        assert kind == KIND_RESPONSE
        assert decode_header(kind, header, Response) == RESPONSE

    def test_body_consumed_without_breaking_framing(self):
        """A padded request body must not bleed into the next frame."""
        body_len = 10_000
        payload = (
            encode_frame(REQUEST, body_len=body_len)
            + bytes(body_len)
            + encode_frame(RESPONSE)
        )

        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(payload)
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            return first, second

        (kind1, header1), (kind2, header2) = asyncio.run(_run())
        assert decode_header(kind1, header1, Request) == REQUEST
        assert decode_header(kind2, header2, Response) == RESPONSE
        assert header1["body_len"] == body_len

    def test_extra_header_fields_are_ignored(self):
        """Forward compatibility: unknown header keys don't break decode."""
        kind, header = read_from_bytes(encode_frame(RESPONSE))
        header["future_field"] = "whatever"
        assert decode_header(kind, header, Response) == RESPONSE


def frame_with_header(blob: bytes) -> bytes:
    return struct.pack(">I", len(blob)) + blob


class TestMalformedInput:
    def test_zero_header_length_rejected(self):
        with pytest.raises(FrameError):
            read_from_bytes(struct.pack(">I", 0))

    def test_oversize_header_length_rejected(self):
        with pytest.raises(FrameError):
            read_from_bytes(struct.pack(">I", MAX_HEADER_BYTES + 1))

    def test_non_json_header_rejected(self):
        with pytest.raises(FrameError):
            read_from_bytes(frame_with_header(b"\xff\xfe not json"))

    def test_non_object_header_rejected(self):
        with pytest.raises(FrameError):
            read_from_bytes(frame_with_header(b"[1,2,3]"))

    def test_header_without_kind_rejected(self):
        with pytest.raises(FrameError):
            read_from_bytes(frame_with_header(b'{"request_id":1}'))

    def test_implausible_body_length_rejected(self):
        blob = json.dumps(
            {"kind": KIND_REQUEST, "body_len": MAX_BODY_BYTES + 1}
        ).encode()
        with pytest.raises(FrameError):
            read_from_bytes(frame_with_header(blob))

    def test_negative_body_length_rejected(self):
        blob = json.dumps({"kind": KIND_REQUEST, "body_len": -1}).encode()
        with pytest.raises(FrameError):
            read_from_bytes(frame_with_header(blob))

    def test_truncated_frame_raises_incomplete_read(self):
        payload = encode_frame(REQUEST)
        with pytest.raises(asyncio.IncompleteReadError):
            read_from_bytes(payload[: len(payload) // 2])

    def test_truncated_length_prefix_raises_incomplete_read(self):
        with pytest.raises(asyncio.IncompleteReadError):
            read_from_bytes(b"\x00\x00")


class TestDecodeHeader:
    def test_kind_mismatch_rejected(self):
        kind, header = read_from_bytes(encode_frame(REQUEST))
        with pytest.raises(FrameError):
            decode_header(kind, header, Response)

    def test_missing_required_field_rejected(self):
        kind, header = read_from_bytes(encode_frame(RESPONSE))
        del header["status"]
        with pytest.raises(FrameError):
            decode_header(kind, header, Response)

    def test_oversize_outgoing_header_rejected(self):
        huge = Request(
            request_id=1,
            client="x" * (MAX_HEADER_BYTES + 1),
            qos_requested=0,
            qos_run=0,
            downgraded=False,
            payload_bytes=0,
            size_mtus=1,
            attempt=1,
            issued_ns=0,
        )
        with pytest.raises(FrameError):
            encode_frame(huge)
