"""Shared helpers for exercising every available kernel backend.

``ALWAYS_BACKENDS`` are the pure-Python kernels every environment has;
``available_backends()`` additionally includes ``compiled`` when the C
extension can be built/loaded on this host (it is skipped silently
otherwise — the compiled kernel is optional by design).
"""

from __future__ import annotations

from typing import List, Type

from repro.sim.backend import BackendUnavailable, simulator_class
from repro.sim.engine import Simulator

ALWAYS_BACKENDS = ("pure", "array")


def available_backends() -> List[str]:
    names = list(ALWAYS_BACKENDS)
    try:
        simulator_class("compiled")
    except BackendUnavailable:
        return names
    names.append("compiled")
    return names


def sim_class(backend: str) -> Type[Simulator]:
    return simulator_class(backend)
