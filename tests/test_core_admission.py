"""Unit + property tests for the Algorithm-1 admission controller."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionController, AdmissionParams
from repro.core.qos import Priority
from repro.core.slo import SLO, SLOMap
from repro.sim.engine import ns_from_us


def make_controller(alpha=0.01, beta=0.01, floor=0.01, pctl=99.0, clock=None,
                    high_us=15.0, med_us=25.0):
    slo_map = SLOMap.for_three_levels(
        ns_from_us(high_us), ns_from_us(med_us), target_percentile=pctl
    )
    return AdmissionController(
        slo_map,
        AdmissionParams(alpha=alpha, beta=beta, floor=floor),
        rng=random.Random(7),
        clock=clock or (lambda: 0),
    )


def test_initial_admit_probability_is_one():
    ctrl = make_controller()
    assert ctrl.p_admit(0) == 1.0
    assert ctrl.p_admit(1) == 1.0


def test_full_probability_always_admits():
    ctrl = make_controller()
    for _ in range(200):
        d = ctrl.on_rpc_issue(Priority.PC)
        assert d.qos_run == 0 and not d.downgraded


def test_scavenger_requests_never_downgraded():
    ctrl = make_controller()
    for _ in range(50):
        d = ctrl.on_rpc_issue(Priority.BE)
        assert d.qos_run == 2 and not d.downgraded


def test_downgrade_goes_to_lowest_qos():
    ctrl = make_controller()
    # Crash p_admit with misses, then issue many RPCs.
    for _ in range(200):
        ctrl.on_rpc_completion(ns_from_us(1000), 8, 0)
    assert ctrl.p_admit(0) == pytest.approx(0.01)
    downgrades = 0
    for _ in range(500):
        d = ctrl.on_rpc_issue(Priority.PC)
        if d.downgraded:
            downgrades += 1
            assert d.qos_run == 2
            assert d.qos_requested == 0
    assert downgrades > 400  # ~99% at the floor


def test_miss_decrement_proportional_to_size():
    a = make_controller()
    b = make_controller()
    a.on_rpc_completion(ns_from_us(1000), 1, 0)
    b.on_rpc_completion(ns_from_us(10000), 10, 0)
    assert 1.0 - a.p_admit(0) == pytest.approx(0.01)
    assert 1.0 - b.p_admit(0) == pytest.approx(0.10)


def test_ten_unit_misses_equal_one_ten_mtu_miss():
    a = make_controller()
    b = make_controller()
    for _ in range(10):
        a.on_rpc_completion(ns_from_us(100), 1, 0)  # 100us > 15us budget
    b.on_rpc_completion(ns_from_us(1000), 10, 0)
    assert a.p_admit(0) == pytest.approx(b.p_admit(0))


def test_floor_prevents_starvation():
    ctrl = make_controller(floor=0.05)
    for _ in range(1000):
        ctrl.on_rpc_completion(ns_from_us(999), 8, 0)
    assert ctrl.p_admit(0) == pytest.approx(0.05)


def test_additive_increase_gated_by_window():
    now = {"t": 0}
    ctrl = make_controller(clock=lambda: now["t"], pctl=99.0, high_us=15.0)
    # Crash first so increases are visible.
    ctrl.on_rpc_completion(ns_from_us(1000), 50, 0)
    p0 = ctrl.p_admit(0)
    window = ctrl.slo_map.get(0).increment_window_ns
    # Many SLO-meeting completions within one window: only the first
    # past-the-window one increments.
    now["t"] = window + 1
    for _ in range(100):
        ctrl.on_rpc_completion(ns_from_us(1), 1, 0)
    assert ctrl.p_admit(0) == pytest.approx(p0 + 0.01)
    # Next window: one more increment.
    now["t"] = 2 * (window + 1)
    for _ in range(100):
        ctrl.on_rpc_completion(ns_from_us(1), 1, 0)
    assert ctrl.p_admit(0) == pytest.approx(p0 + 0.02)


def test_increase_capped_at_one():
    now = {"t": 0}
    ctrl = make_controller(clock=lambda: now["t"])
    window = ctrl.slo_map.get(0).increment_window_ns
    for i in range(10):
        now["t"] = (i + 1) * (window + 1)
        ctrl.on_rpc_completion(ns_from_us(1), 1, 0)
    assert ctrl.p_admit(0) == 1.0


def test_per_qos_state_independent():
    ctrl = make_controller()
    ctrl.on_rpc_completion(ns_from_us(1000), 8, 0)
    assert ctrl.p_admit(0) < 1.0
    assert ctrl.p_admit(1) == 1.0


def test_scavenger_completions_ignored():
    ctrl = make_controller()
    ctrl.on_rpc_completion(ns_from_us(10_000), 8, 2)
    assert ctrl.p_admit(0) == 1.0
    assert ctrl.p_admit(1) == 1.0


def test_normalized_slo_large_rpc_gets_larger_budget():
    ctrl = make_controller(high_us=15.0)
    # 100us absolute for an 8-MTU RPC is within 8*15=120us budget.
    ctrl.on_rpc_completion(ns_from_us(100), 8, 0)
    assert ctrl.state_counters(0)[1] == 0  # no decrease
    # The same 100us for a 1-MTU RPC is a miss.
    ctrl.on_rpc_completion(ns_from_us(100), 1, 0)
    assert ctrl.state_counters(0)[1] == 1


def test_trace_records_adjustments():
    ctrl = make_controller()
    ctrl.enable_trace()
    ctrl.on_rpc_completion(ns_from_us(1000), 8, 0)
    assert len(ctrl.trace) == 1
    t, qos, p = ctrl.trace[0]
    assert qos == 0 and p == pytest.approx(0.92)


def test_trace_requires_enable():
    ctrl = make_controller()
    with pytest.raises(RuntimeError):
        _ = ctrl.trace


def test_params_validation():
    with pytest.raises(ValueError):
        AdmissionParams(alpha=0.0)
    with pytest.raises(ValueError):
        AdmissionParams(beta=1.5)
    with pytest.raises(ValueError):
        AdmissionParams(floor=1.0)


@settings(max_examples=60, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=100_000_000),  # rnl ns
            st.integers(min_value=1, max_value=300),  # size mtus
            st.integers(min_value=0, max_value=2),  # qos
        ),
        max_size=200,
    )
)
def test_p_admit_always_within_bounds(events):
    """Invariant: floor <= p_admit <= 1 under any completion sequence."""
    now = {"t": 0}
    ctrl = make_controller(clock=lambda: now["t"])
    for rnl, size, qos in events:
        now["t"] += 1_000_000
        ctrl.on_rpc_completion(rnl, size, qos)
        for level in (0, 1):
            assert 0.01 - 1e-12 <= ctrl.p_admit(level) <= 1.0 + 1e-12


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_admission_rate_matches_probability(seed):
    """Empirical admit fraction tracks p_admit."""
    slo_map = SLOMap.for_three_levels(ns_from_us(15), ns_from_us(25))
    ctrl = AdmissionController(slo_map, rng=random.Random(seed))
    for _ in range(30):
        ctrl.on_rpc_completion(ns_from_us(1000), 4, 0)
    p = ctrl.p_admit(0)
    admitted = sum(
        1 for _ in range(2000) if not ctrl.on_rpc_issue(Priority.PC).downgraded
    )
    assert abs(admitted / 2000 - p) < 0.06
