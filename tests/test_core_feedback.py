"""Unit tests for the downgrade-feedback application policy."""

import pytest

from repro.core.feedback import DowngradeAwarePolicy, PolicyParams
from repro.core.qos import Priority


def test_params_validation():
    with pytest.raises(ValueError):
        PolicyParams(window=5)
    with pytest.raises(ValueError):
        PolicyParams(high_watermark=0.1, low_watermark=0.2)
    with pytest.raises(ValueError):
        PolicyParams(step=0.0)


def test_initially_no_demotion():
    policy = DowngradeAwarePolicy()
    assert policy.cutoff == 0.0
    assert policy.choose_priority(Priority.PC, 0.01) == Priority.PC


def test_importance_validation():
    policy = DowngradeAwarePolicy()
    with pytest.raises(ValueError):
        policy.choose_priority(Priority.PC, 1.5)


def test_sustained_downgrades_raise_cutoff():
    policy = DowngradeAwarePolicy(PolicyParams(window=50))
    for _ in range(200):
        policy.observe(downgraded=True)
    assert policy.cutoff > 0.0
    # Low-importance PC traffic is now voluntarily demoted to NC.
    assert policy.choose_priority(Priority.PC, 0.0) == Priority.NC
    # High-importance traffic keeps its class.
    assert policy.choose_priority(Priority.PC, 0.99) == Priority.PC
    assert policy.demotions == 1


def test_calm_period_decays_cutoff():
    policy = DowngradeAwarePolicy(PolicyParams(window=50, step=0.1))
    for _ in range(200):
        policy.observe(downgraded=True)
    raised = policy.cutoff
    for _ in range(1000):
        policy.observe(downgraded=False)
    assert policy.cutoff < raised


def test_moderate_fraction_holds_steady():
    params = PolicyParams(window=50, high_watermark=0.3, low_watermark=0.1)
    policy = DowngradeAwarePolicy(params)
    # 20% downgrades: between the watermarks -> no adjustment.
    for i in range(500):
        policy.observe(downgraded=(i % 5 == 0))
    assert policy.cutoff == 0.0


def test_demotion_chain_be_stays_be():
    policy = DowngradeAwarePolicy(PolicyParams(window=50))
    for _ in range(200):
        policy.observe(downgraded=True)
    assert policy.choose_priority(Priority.NC, 0.0) == Priority.BE
    assert policy.choose_priority(Priority.BE, 0.0) == Priority.BE


def test_downgrade_fraction_reporting():
    policy = DowngradeAwarePolicy(PolicyParams(window=10))
    assert policy.downgrade_fraction() == 0.0
    for flag in (True, False, True, False):
        policy.observe(flag)
    assert policy.downgrade_fraction() == pytest.approx(0.5)
