"""Unit tests for experiment-driver helper logic (no simulation)."""

import random

import pytest

from repro.core.qos import Priority
from repro.experiments.fig14 import Fig14Result
from repro.experiments.fig15 import Fig15Case, Fig15Result
from repro.experiments.fig16 import Fig16Result
from repro.experiments.fig24 import make_misaligned_mapper, misalignment_fraction
from repro.rpc.message import Rpc


def test_fig14_share_at_slo_interpolates():
    rows = [(0.1, 5.0, 6.0, 30.0), (0.3, 15.0, 20.0, 60.0), (0.5, 35.0, 40.0, 90.0)]
    result = Fig14Result(rows=rows)
    assert result.share_at_slo(5.0) == pytest.approx(0.1)
    assert result.share_at_slo(10.0) == pytest.approx(0.2)
    assert result.share_at_slo(15.0) == pytest.approx(0.3)
    assert result.share_at_slo(25.0) == pytest.approx(0.4)
    # Above all measured tails: the last swept share.
    assert result.share_at_slo(100.0) == pytest.approx(0.5)


def test_fig15_spread_metric():
    cases = [
        Fig15Case((0.25, 0.25, 0.5), (0.30, 0.25, 0.45), 10.0, 0.0),
        Fig15Case((0.60, 0.30, 0.1), (0.34, 0.28, 0.38), 11.0, 0.2),
    ]
    result = Fig15Result(cases=cases, slo_high_us=15.0)
    assert result.admitted_high_shares() == [0.30, 0.34]
    assert result.spread_of_admitted_high() == pytest.approx(0.04)


def test_fig16_fit_is_least_squares():
    # Perfect C/rho data: the fit recovers C exactly, error ~0.
    c = 0.45
    rows = [(rho, c / rho) for rho in (1.4, 1.6, 1.8, 2.0)]
    num = sum(share / rho for rho, share in rows)
    den = sum(1.0 / rho**2 for rho, _ in rows)
    fit = num / den
    assert fit == pytest.approx(c)
    assert Fig16Result(rows=rows, fit_c=fit).fit_error() < 1e-12


def test_fig24_mapper_shapes():
    rng = random.Random(0)
    mapper = make_misaligned_mapper(rng)
    frac = misalignment_fraction(mapper)
    # Figure-4-like: substantial but not total misalignment.
    assert 0.1 < frac < 0.7
    # The mapper emits valid QoS levels with plausible frequencies.
    rpc = Rpc(src=0, dst=1, priority=Priority.BE, payload_bytes=1000, issued_ns=0)
    draws = [mapper(rpc) for _ in range(500)]
    assert set(draws) <= {0, 1, 2}
    # BE leaks upward: a meaningful share of BE rides QoS_h (Fig 4).
    assert draws.count(0) > 50


def test_fig24_mapper_splits_sum_to_one():
    rng = random.Random(1)
    mapper = make_misaligned_mapper(rng)
    for split in mapper.table.values():
        assert sum(split) == pytest.approx(1.0)
        assert all(s > 0 for s in split)
