"""Integration test: the design extends beyond three QoS levels."""

from repro.experiments import nqos


def test_five_qos_levels_all_meet_slo():
    result = nqos.run(num_hosts=4, duration_ms=15.0, warmup_ms=7.0)
    assert len(result.weights) == 5
    # Every SLO-carrying class lands at or under its target...
    for qos, slo in result.slo_us.items():
        assert result.tails_us[qos] < 1.5 * slo, (qos, result.tails_us[qos])
    # ...and the tails respect the class ordering (no inversion).
    ordered = [result.tails_us[q] for q in range(4)]
    assert ordered == sorted(ordered)
    # The scavenger class carries the downgraded overflow.
    assert result.admitted_mix.get(4, 0.0) > 0.05
