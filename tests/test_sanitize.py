"""SimSanitizer tests: each invariant must trip on deliberately
corrupted state with structured provenance, stay silent on healthy
runs, and — the load-bearing property — leave results bit-identical
(sanitized and unsanitized runs of the same seed produce the same
digest).
"""

import pytest

from repro.core.admission import AdmissionController
from repro.core.qos import QoS
from repro.core.slo import SLOMap
from repro.net.packet import Packet
from repro.net.queues import (
    DwrrScheduler,
    FifoScheduler,
    PFabricScheduler,
    StrictPriorityScheduler,
    WfqScheduler,
)
from repro.sim import SANITIZE_ENV_VAR, SanitizerError, Simulator, sanitize_enabled

BUF = 1 << 20


def _pkt(qos=0, size=1500, **kw):
    return Packet(src=0, dst=1, qos=qos, size_bytes=size, **kw)


# ----------------------------------------------------------------------
# Flag resolution
# ----------------------------------------------------------------------
def test_explicit_flag_wins_over_env(monkeypatch):
    monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
    assert sanitize_enabled(False) is False
    monkeypatch.delenv(SANITIZE_ENV_VAR)
    assert sanitize_enabled(True) is True


@pytest.mark.parametrize("value,expect", [
    ("1", True), ("true", True), ("on", True), ("yes", True),
    ("0", False), ("", False), ("false", False), ("no", False),
    ("off", False), ("  False  ", False),
])
def test_env_parsing(monkeypatch, value, expect):
    monkeypatch.setenv(SANITIZE_ENV_VAR, value)
    assert sanitize_enabled() is expect


def test_env_enables_all_layers(monkeypatch):
    monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
    assert Simulator().sanitize is True
    assert WfqScheduler((1, 1), BUF)._sanitize is True
    monkeypatch.delenv(SANITIZE_ENV_VAR)
    assert Simulator().sanitize is False


# ----------------------------------------------------------------------
# Clock monotonicity (simulator kernel)
# ----------------------------------------------------------------------
def _corrupt_past_event(sim):
    """Plant a heap entry that fires before ``now`` — impossible via the
    public API (schedule/post reject negative delays), so reach into the
    active kernel's storage the way a kernel bug would."""
    import heapq

    from repro.sim.compiled import CompiledSimulator
    from repro.sim.kernel import SEQ_BITS, SLOT_BITS, ArraySimulator

    time = sim.now - 5
    if isinstance(sim, CompiledSimulator):
        # The C core's post_at takes an absolute time; past-rejection
        # lives in the Python facade, so this lands a past event.
        sim._core.post_at(time, lambda: None)
    elif isinstance(sim, ArraySimulator):
        slot = sim._alloc_slot()
        sim._slot_fn[slot] = lambda: None
        sim._slot_args[slot] = ()
        heapq.heappush(
            sim._keys, ((time << SEQ_BITS | sim._seq) << SLOT_BITS) | slot
        )
        sim._seq += 1
    else:
        heapq.heappush(sim._heap, (time, sim._seq, lambda: None, ()))
        sim._seq += 1


def test_clock_monotonicity_trips_in_step():
    sim = Simulator(sanitize=True)
    sim.post(100, lambda: None)
    assert sim.step()
    _corrupt_past_event(sim)
    with pytest.raises(SanitizerError) as exc:
        sim.step()
    assert exc.value.invariant == "clock-monotonicity"
    prov = exc.value.provenance
    assert prov["event_time_ns"] == 95 and prov["now_ns"] == 100
    assert "callback" in prov and "seq" in prov


def test_clock_monotonicity_trips_in_run():
    sim = Simulator(sanitize=True)

    def corrupt():
        _corrupt_past_event(sim)

    sim.post(100, corrupt)
    with pytest.raises(SanitizerError) as exc:
        sim.run()
    assert exc.value.invariant == "clock-monotonicity"


def test_unsanitized_simulator_skips_the_check():
    sim = Simulator(sanitize=False)
    sim.post(100, lambda: None)
    sim.step()
    _corrupt_past_event(sim)
    assert sim.step()  # fires without raising; clock bug goes unnoticed


# ----------------------------------------------------------------------
# Queue conservation (every scheduler family)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make", [
    lambda: FifoScheduler(BUF, num_classes=3, sanitize=True),
    lambda: StrictPriorityScheduler(3, BUF, sanitize=True),
    lambda: WfqScheduler((8, 4, 1), BUF, sanitize=True),
    lambda: DwrrScheduler((8, 4, 1), BUF, sanitize=True),
    lambda: PFabricScheduler(BUF, num_classes=3, sanitize=True),
], ids=["fifo", "spq", "wfq", "dwrr", "pfabric"])
def test_conservation_trips_on_tampered_counters(make):
    sched = make()
    sched.enqueue(_pkt(qos=1))
    # Forge a phantom dequeue: enq == deq + backlog no longer holds.
    sched.stats.dequeued[1] += 1
    with pytest.raises(SanitizerError) as exc:
        sched.enqueue(_pkt(qos=1))
    assert exc.value.invariant == "queue-conservation"
    prov = exc.value.provenance
    assert prov["enqueued"][1] >= 1 and prov["dequeued"][1] == 1
    assert prov["packet"] is not None
    assert "conservation" in str(exc.value)


def test_conservation_trips_on_leaked_backlog():
    sched = WfqScheduler((8, 4, 1), BUF, sanitize=True)
    for _ in range(3):
        sched.enqueue(_pkt(qos=0))
    # A packet vanishes from the class-ring accounting without any
    # stats update — the shape of a lost-packet bug in a scheduler
    # rewrite.
    sched._counts[0] -= 1
    with pytest.raises(SanitizerError) as exc:
        sched.dequeue()
    assert exc.value.invariant == "queue-conservation"


def test_wfq_work_conservation_trips_on_lost_head_tag():
    sched = WfqScheduler((8, 4, 1), BUF, sanitize=True)
    sched.enqueue(_pkt(qos=0))
    # The head-tag heap loses its entry while the packet stays queued —
    # the scheduler would otherwise go idle with backlog, silently.
    sched._head_tags.clear()
    with pytest.raises(SanitizerError) as exc:
        sched.dequeue()
    assert exc.value.invariant == "wfq-work-conservation"


def test_conservation_clean_through_mixed_traffic():
    sched = WfqScheduler((8, 4, 1), 8 * 1500, sanitize=True)
    sent = 0
    for i in range(64):
        if sched.enqueue(_pkt(qos=i % 3)):
            sent += 1
        if i % 3 == 0:
            if sched.dequeue() is not None:
                sent -= 1
    while sched.dequeue() is not None:
        sent -= 1
    assert sent == 0  # drops were refused at the door, never half-queued


def test_pfabric_eviction_is_conserved():
    # Two big packets fill the buffer; a small arrival evicts the
    # largest.  The eviction counter keeps the identity intact.
    sched = PFabricScheduler(2 * 1500, num_classes=3, sanitize=True)
    assert sched.enqueue(_pkt(size=1500, remaining_mtus=40))
    assert sched.enqueue(_pkt(size=1500, remaining_mtus=30))
    assert sched.enqueue(_pkt(size=1500, remaining_mtus=1))  # evicts the 40
    assert sched._evictions == 1
    assert sched.dequeue().remaining_mtus == 1
    assert sched.dequeue().remaining_mtus == 30
    assert sched.dequeue() is None


# ----------------------------------------------------------------------
# WFQ virtual-time monotonicity
# ----------------------------------------------------------------------
def test_wfq_virtual_time_trips_on_clock_corruption():
    sched = WfqScheduler((8, 4, 1), BUF, sanitize=True)
    sched.enqueue(_pkt(qos=2))  # small weight -> large finish tag
    # Corrupt V above every pending tag — the shape of a bad reset.
    sched._virtual_time = 1e12
    with pytest.raises(SanitizerError) as exc:
        sched.dequeue()
    assert exc.value.invariant == "wfq-virtual-time"
    prov = exc.value.provenance
    assert prov["finish_tag"] < prov["virtual_time"]
    assert prov["qos"] == 2


def test_wfq_virtual_time_clean_across_busy_periods():
    sched = WfqScheduler((8, 4, 1), BUF, sanitize=True)
    for _ in range(2):  # two busy periods, V resets between them
        for i in range(16):
            sched.enqueue(_pkt(qos=i % 3))
        while sched.dequeue() is not None:
            pass
    # Exact reset sentinel, not a tag comparison — hence the suppression.
    assert sched._virtual_time == 0.0  # simlint: ignore[SIM003]


# ----------------------------------------------------------------------
# Admit-probability bounds
# ----------------------------------------------------------------------
def _controller(**kw):
    slo_map = SLOMap.for_three_levels(50_000, 200_000)
    return AdmissionController(slo_map, **kw), int(QoS.HIGH)


def test_p_admit_bounds_trip_on_corruption():
    ac, high = _controller(sanitize=True)
    ac._state[high].p_admit = 1.5
    with pytest.raises(SanitizerError) as exc:
        ac.on_rpc_issue_qos(high)
    assert exc.value.invariant == "admit-probability-bounds"
    assert exc.value.provenance["qos"] == high
    assert "1.5" in str(exc.value)


def test_p_admit_bounds_trip_after_update():
    ac, high = _controller(sanitize=True)
    ac._state[high].p_admit = -0.25
    with pytest.raises(SanitizerError) as exc:
        # SLO-met path: additive increase is window-gated so the
        # corrupted value survives the update and the post-check fires.
        # (The miss path would clamp to params.floor and self-repair.)
        ac.on_rpc_completion(rnl_ns=1_000, size_mtus=1, qos_run=high)
    assert exc.value.invariant == "admit-probability-bounds"
    assert exc.value.provenance["size_mtus"] == 1


def test_p_admit_clean_through_aimd_cycles():
    ac, high = _controller(sanitize=True)
    for i in range(500):
        ac.on_rpc_issue_qos(high)
        rnl = 10**9 if i % 3 == 0 else 1_000
        ac.on_rpc_completion(rnl_ns=rnl, size_mtus=4, qos_run=high)
    assert 0.0 <= ac.p_admit(high) <= 1.0


# ----------------------------------------------------------------------
# Behavior preservation: sanitize on/off digest parity
# ----------------------------------------------------------------------
def _run_star_digest(budget, seed):
    from benchmarks.perf.scenarios import SCENARIOS

    built = SCENARIOS["star_incast_admission"](budget, seed)
    built.sim.run(**built.run_kwargs)
    return built.digest_fn()


def test_sanitized_run_is_bit_identical(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
    plain = _run_star_digest(40_000, 11)
    monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
    sanitized = _run_star_digest(40_000, 11)
    assert plain == sanitized
    assert plain["completed"] > 0  # the run actually did work
