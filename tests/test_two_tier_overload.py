"""Integration: Aequitas handles overloads *inside* the fabric.

Section 2.2.2: oversubscription does not only occur at the edge — the
ToR uplink can be the bottleneck.  Aequitas needs no knowledge of where
the overload is: RNL measurements absorb it wherever it forms.  We
build a two-tier fabric with 2x-oversubscribed uplinks, drive cross-ToR
traffic, and check that admission control still restores the QoS_h SLO.
"""

import random

from repro.core.admission import AdmissionParams
from repro.core.qos import Priority
from repro.core.slo import SLOMap
from repro.net.topology import build_two_tier, wfq_factory
from repro.rpc.sizes import FixedSize
from repro.rpc.stack import MetricsCollector, RpcStack
from repro.rpc.workload import OpenLoopSource, steady_pattern
from repro.sim.engine import Simulator, ns_from_ms, ns_from_us
from repro.stats.summary import percentile
from repro.transport.reliable import TransportConfig, TransportEndpoint
from repro.transport.swift import SwiftCC, SwiftParams


def run_two_tier(admission: bool, duration_ms: float = 25.0, seed: int = 9):
    sim = Simulator()
    net = build_two_tier(
        sim,
        num_tors=2,
        hosts_per_tor=3,
        scheduler_factory=wfq_factory((8, 4, 1)),
        line_rate_bps=100e9,
        uplink_oversubscription=2.0,
    )
    slo_map = SLOMap.for_three_levels(
        ns_from_us(15), ns_from_us(25), target_percentile=99.0
    )
    config = TransportConfig(
        cc_factory=lambda: SwiftCC(SwiftParams(target_delay_ns=ns_from_us(25))),
        ack_bypass=True,
    )
    endpoints = [TransportEndpoint(sim, h, config) for h in net.hosts]
    for a in endpoints:
        for b in endpoints:
            if a is not b:
                a.register_peer(b)
    metrics = MetricsCollector()
    params = AdmissionParams(alpha=0.05)
    stacks = [
        RpcStack(sim, net.hosts[i], endpoints[i], slo_map, params, metrics,
                 seed=seed, admission_enabled=admission)
        for i in range(net.num_hosts)
    ]
    # All traffic crosses the fabric, 80% of it performance-critical:
    # PC alone offers 0.8 * 0.8 * 300G = 192 Gbps against the 150 Gbps
    # uplink, so QoS_h itself is persistently overloaded in the core.
    for i in range(3):
        OpenLoopSource(
            sim,
            stacks[i],
            [3, 4, 5],
            {Priority.PC: 0.8, Priority.BE: 0.2},
            FixedSize(32 * 1024),
            steady_pattern(0.8),
            rng=random.Random(seed * 13 + i),
            stop_ns=ns_from_ms(duration_ms),
        )
    sim.run(until=ns_from_ms(duration_ms))
    warm = ns_from_ms(duration_ms / 2)
    samples = metrics.normalized_rnl_ns(0, since_ns=warm)
    tail = percentile(samples, 99.0) / 1000.0
    admitted_backlog = sum(
        1 for r in metrics.issued if r.qos_run == 0 and not r.completed
    )
    return tail, admitted_backlog, metrics


def test_uplink_overload_contained_by_admission():
    """QoS_h alone overloads the oversubscribed uplink.  Without
    admission every QoS_h RPC slows down (the completed-RPC tail blows
    out and work piles up on QoS_h flows); with Aequitas the *admitted*
    QoS_h traffic is trimmed to what the fabric can carry at the SLO —
    with no knowledge of where the bottleneck is — and the excess is
    explicitly downgraded."""
    tail_without, backlog_without, m_without = run_two_tier(admission=False)
    tail_with, backlog_with, m_with = run_two_tier(admission=True)
    # Without admission, in-SLO-class work accumulates uncleared.
    assert backlog_without > 3 * max(backlog_with, 1)
    assert m_with.downgrades > 0
    # Admitted QoS_h traffic is healthy; the baseline tail is far worse.
    assert tail_with < 20.0
    assert tail_without > 2 * tail_with
