"""Observability layer: span completeness, histogram math, exporters.

The contract under test has three legs:

* **completeness** — with tracing on, every RPC the metrics collector
  counted has exactly one span, and the spans reconstruct the same
  aggregate RNL sums the collector computed independently;
* **zero overhead off** — a traced run and a plain run of the same
  scenario produce bit-identical determinism digests (the tracer is
  read-only with respect to simulation state);
* **export fidelity** — the Chrome ``trace_event`` document is
  schema-valid (Perfetto-loadable) and the JSONL record stream matches
  the tracer's in-memory records one-for-one.
"""

import json
import random

import pytest

from repro.core.admission import AdmissionParams
from repro.core.qos import Priority
from repro.core.slo import SLOMap
from repro.net.topology import build_two_tier, wfq_factory
from repro.obs.export import (
    chrome_trace,
    queue_residency_report,
    rpc_report,
    trace_report,
    write_chrome_trace,
    write_jsonl,
    write_metrics_series,
)
from repro.obs.metrics import Histogram, MetricsRegistry, exponential_bounds
from repro.obs.profile import SimProfiler
from repro.obs.runtime import (
    ObsContext,
    activate,
    active,
    active_tracer,
    deactivate,
    trace_enabled_by_env,
)
from repro.obs.trace import Tracer
from repro.rpc.sizes import FixedSize
from repro.rpc.stack import MetricsCollector, RpcStack
from repro.rpc.workload import OpenLoopSource, steady_pattern
from repro.sim.engine import Simulator, ns_from_ms, ns_from_us
from repro.stats.digest import completed_rpc_digest, digest_hex
from repro.stats.summary import percentile as exact_percentile
from repro.transport.reliable import TransportConfig, TransportEndpoint
from repro.transport.swift import SwiftCC, SwiftParams


@pytest.fixture(autouse=True)
def _obs_clean():
    """Never leak an active observability context between tests."""
    deactivate()
    yield
    deactivate()


def _run_two_tier(traced: bool, duration_ms: float = 4.0, seed: int = 9):
    """The overloaded two-tier scenario, optionally under tracing.

    Same wiring as test_two_tier_overload.run_two_tier (admission on):
    QoS_h alone oversubscribes the ToR uplinks, so the run exercises
    downgrades, AIMD decreases, and deep queue residency in the core.
    """
    context = None
    if traced:
        context = activate(ObsContext.full())
    try:
        sim = Simulator()
        net = build_two_tier(
            sim,
            num_tors=2,
            hosts_per_tor=3,
            scheduler_factory=wfq_factory((8, 4, 1)),
            line_rate_bps=100e9,
            uplink_oversubscription=2.0,
        )
        slo_map = SLOMap.for_three_levels(
            ns_from_us(15), ns_from_us(25), target_percentile=99.0
        )
        config = TransportConfig(
            cc_factory=lambda: SwiftCC(SwiftParams(target_delay_ns=ns_from_us(25))),
            ack_bypass=True,
        )
        endpoints = [TransportEndpoint(sim, h, config) for h in net.hosts]
        for a in endpoints:
            for b in endpoints:
                if a is not b:
                    a.register_peer(b)
        metrics = MetricsCollector()
        stacks = [
            RpcStack(sim, net.hosts[i], endpoints[i], slo_map,
                     AdmissionParams(alpha=0.05), metrics, seed=seed)
            for i in range(net.num_hosts)
        ]
        for i in range(3):
            OpenLoopSource(
                sim,
                stacks[i],
                [3, 4, 5],
                {Priority.PC: 0.8, Priority.BE: 0.2},
                FixedSize(32 * 1024),
                steady_pattern(0.8),
                rng=random.Random(seed * 13 + i),
                stop_ns=ns_from_ms(duration_ms),
            )
        sim.run(until=ns_from_ms(duration_ms))
    finally:
        if traced:
            deactivate()
    return context, metrics


@pytest.fixture(scope="module")
def traced_run():
    deactivate()  # module fixtures run outside the autouse guard's scope
    try:
        return _run_two_tier(traced=True)
    finally:
        deactivate()


# ----------------------------------------------------------------------
# Span completeness
# ----------------------------------------------------------------------
def test_rpc_spans_are_complete_against_collector(traced_run):
    context, metrics = traced_run
    tracer = context.tracer
    spans = tracer.rpc_spans

    assert len(spans) == metrics.issued_count > 0
    completed = [s for s in spans if s.completed]
    assert len(completed) == metrics.completed_count > 0
    assert sum(1 for s in spans if s.downgraded) == metrics.downgrades > 0
    assert sum(1 for s in spans if s.terminated) == metrics.terminated

    # Spans independently reconstruct the collector's digest aggregates.
    rnl_by_qos = {}
    count_by_qos = {}
    for span in completed:
        assert span.rnl_ns is not None and span.rnl_ns > 0
        assert span.completed_ns >= span.issued_ns
        rnl_by_qos[span.qos_run] = rnl_by_qos.get(span.qos_run, 0) + span.rnl_ns
        count_by_qos[span.qos_run] = count_by_qos.get(span.qos_run, 0) + 1
    assert rnl_by_qos == metrics.rnl_sum_by_qos
    assert count_by_qos == metrics.completed_by_qos

    # Downgraded RPCs run below their requested class and, because the
    # requested class carries an SLO, always count as verdict misses.
    for span in spans:
        if span.downgraded:
            assert span.qos_run > span.qos_requested
            assert span.slo_met is not True

    # Every span is retrievable by id; unknown ids are None.
    assert tracer.rpc_span(completed[0].rpc_id) is completed[0]
    assert tracer.rpc_span(-1) is None


def test_queue_and_tx_spans_cover_the_fabric(traced_run):
    context, _metrics = traced_run
    tracer = context.tracer

    assert tracer.queue_spans, "overloaded run must record queue residency"
    # Every dequeue starts a serialization, so the streams pair up.
    assert len(tracer.tx_spans) == len(tracer.queue_spans)

    for span in tracer.queue_spans:
        assert span.dequeued_ns >= span.enqueued_ns >= 0
        assert span.residency_ns == span.dequeued_ns - span.enqueued_ns
        assert span.size_bytes > 0

    nodes = {span.node for span in tracer.queue_spans}
    # Host NICs and the oversubscribed core both show up.
    assert any(node.startswith("nic") for node in nodes)
    assert any(not node.startswith("nic") for node in nodes)

    # The aggregate view sums exactly over the raw spans.
    agg = tracer.queue_residency_by_node()
    assert sum(count for count, _t, _m in agg.values()) == len(tracer.queue_spans)
    assert sum(total for _c, total, _m in agg.values()) == sum(
        s.residency_ns for s in tracer.queue_spans
    )
    qos0 = tracer.queue_residency_by_node(qos=0)
    assert set(qos0) == {key for key in agg if key[1] == 0}


def test_admission_events_record_aimd_decreases(traced_run):
    context, _metrics = traced_run
    events = context.tracer.admission_events
    assert events, "persistent QoS_h overload must trigger AIMD adjustments"
    assert {e.kind for e in events} <= {"increase", "decrease"}
    assert any(e.kind == "decrease" for e in events)
    for event in events:
        assert 0.0 <= event.p_admit <= 1.0
        assert "->" in event.channel


# ----------------------------------------------------------------------
# Zero overhead off: traced and plain runs are bit-identical
# ----------------------------------------------------------------------
def test_traced_run_digest_matches_plain_run(traced_run):
    _context, traced_metrics = traced_run
    _none, plain_metrics = _run_two_tier(traced=False)
    assert digest_hex(completed_rpc_digest(traced_metrics)) == digest_hex(
        completed_rpc_digest(plain_metrics)
    )


# ----------------------------------------------------------------------
# Histogram bucket math vs exact quantiles
# ----------------------------------------------------------------------
def test_histogram_quantiles_within_bucket_resolution():
    rng = random.Random(42)
    samples = [rng.lognormvariate(9.0, 0.8) for _ in range(5000)]
    hist = Histogram("rnl")
    for s in samples:
        hist.observe(s)

    assert hist.count == len(samples)
    assert hist.mean == pytest.approx(sum(samples) / len(samples))
    # Extremes are exact (clamped to observed min/max).
    assert hist.quantile(0.0) == pytest.approx(min(samples))
    assert hist.quantile(1.0) == pytest.approx(max(samples))
    # Interior quantiles are within one bucket's relative width (~33%
    # at 8 buckets/decade) of the exact order statistic.
    for pctl in (50.0, 90.0, 99.0, 99.9):
        exact = exact_percentile(samples, pctl)
        assert hist.percentile(pctl) == pytest.approx(exact, rel=0.35)

    summary = hist.summary()
    assert summary["count"] == float(len(samples))
    assert summary["min"] == pytest.approx(min(samples))
    assert summary["max"] == pytest.approx(max(samples))
    assert summary["p50"] <= summary["p90"] <= summary["p99"] <= summary["p999"]


def test_histogram_edge_cases_and_validation():
    empty = Histogram("empty")
    assert empty.quantile(0.5) == 0.0
    assert empty.summary() == {
        "count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
        "p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0,
    }
    with pytest.raises(ValueError):
        empty.quantile(-0.01)
    with pytest.raises(ValueError):
        empty.quantile(1.01)
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10.0, 5.0))
    with pytest.raises(ValueError):
        exponential_bounds(lo=0.0)
    with pytest.raises(ValueError):
        exponential_bounds(lo=10.0, hi=5.0)
    with pytest.raises(ValueError):
        exponential_bounds(per_decade=0)

    # Values beyond the last edge land in the overflow bucket and the
    # quantile stays clamped to the observed max.
    hist = Histogram("overflow", bounds=(1.0, 10.0))
    for value in (0.5, 5.0, 1e6):
        hist.observe(value)
    assert hist.counts[-1] == 1
    assert hist.quantile(1.0) == pytest.approx(1e6)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_and_snapshot():
    reg = MetricsRegistry()
    c = reg.counter("rpc_issued", qos=0)
    c.inc()
    c.inc(2)
    assert reg.counter("rpc_issued", qos=0) is c
    assert reg.counter("rpc_issued", qos=1) is not c
    reg.gauge("p_admit", qos=0, node="h0").set(0.25)
    reg.histogram("rnl_norm_ns", qos=0).observe(1500.0)

    snap = reg.snapshot()
    assert snap["rpc_issued{qos=0}"] == 3
    assert snap["rpc_issued{qos=1}"] == 0
    assert snap["p_admit{qos=0,node=h0}"] == 0.25
    hist_summary = snap["rnl_norm_ns{qos=0}"]
    assert hist_summary["count"] == 1.0
    assert hist_summary["p50"] == pytest.approx(1500.0, rel=0.35)


def test_registry_sampler_snapshots_at_sim_cadence():
    reg = MetricsRegistry()
    sim = Simulator()
    counter = reg.counter("events")
    sim.post(1500, counter.inc)  # lands between the 1st and 2nd ticks
    reg.install_sampler(sim, cadence_ns=1000, until_ns=5000)
    sim.run(until=10_000)

    assert [t for t, _snap in reg.series] == [1000, 2000, 3000, 4000, 5000]
    values = [snap["events"] for _t, snap in reg.series]
    assert values == [0, 1, 1, 1, 1]

    with pytest.raises(ValueError):
        reg.install_sampler(sim, cadence_ns=0)


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
def test_profiler_attributes_every_event(traced_run):
    context, _metrics = traced_run
    profiler = context.profiler
    assert profiler.total_events > 0
    rows = profiler.rows()
    assert sum(r.calls for r in rows) == profiler.total_events
    assert abs(sum(r.share for r in rows) - 1.0) < 1e-9
    # Cost-ordered, and the known hot handlers are attributed by name.
    assert rows == sorted(rows, key=lambda r: (-r.total_s, r.name))
    names = {r.name for r in rows}
    assert any("_finish_transmit" in n for n in names)
    report = profiler.report(top=3)
    assert "profile:" in report and rows[0].name in report


def test_profiler_standalone_counts_match_engine():
    profiler = SimProfiler()
    sim = Simulator(profiler=profiler)
    hits = []
    for i in range(5):
        sim.post(i * 10, hits.append, i)
    sim.run()
    assert len(hits) == 5
    assert profiler.total_events == sim.events_processed == 5
    assert SimProfiler().report() == "profile: no events recorded"


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_chrome_trace_schema(traced_run):
    context, _metrics = traced_run
    doc = chrome_trace(context.tracer, context.registry)
    json.dumps(doc)  # must be serializable as-is

    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert {e["ph"] for e in events} <= {"X", "i", "C", "M", "s", "f"}

    named_pids = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert named_pids[1] == "rpcs"
    for event in events:
        assert event["pid"] in named_pids
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "tid" in event and "name" in event
        if event["ph"] == "i":
            assert event["s"] == "t"

    # Every record kind made it into the stream.
    cats = {e.get("cat") for e in events if e["ph"] != "M"}
    assert {"rpc", "queue", "tx", "admission"} <= cats
    admission_counters = [
        e for e in events if e["ph"] == "C" and e["cat"] == "admission"
    ]
    assert len(admission_counters) == len(context.tracer.admission_events)
    for counter in admission_counters:
        assert 0.0 <= counter["args"]["p_admit"] <= 1.0
    # Per-flow transport spans: one cwnd and one rtt counter per ACK
    # sample, under their own "transport" process.
    if context.tracer.flow_cwnd_samples:
        transport = [e for e in events if e.get("cat") == "transport"]
        cwnd = [e for e in transport if e["ph"] == "C" and "cwnd" in e["args"]]
        rtt = [e for e in transport if e["ph"] == "C" and "rtt_us" in e["args"]]
        assert len(cwnd) == len(context.tracer.flow_cwnd_samples)
        assert len(rtt) == len(context.tracer.flow_cwnd_samples)
        assert "transport" in named_pids.values()


def test_chrome_trace_flow_events_join_children_to_rpcs(traced_run):
    context, _metrics = traced_run
    tracer = context.tracer
    doc = chrome_trace(tracer)
    events = doc["traceEvents"]

    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    # One arrow per causally-linked child slice: paired s/f with equal
    # ids; every start sits on the rpcs process, every finish elsewhere.
    assert starts and len(starts) == len(finishes)
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    assert all(e["pid"] == 1 for e in starts)
    assert all(e["bp"] == "e" for e in finishes)
    completed = {s.rpc_id for s in tracer.rpc_spans if s.completed}
    for event in starts:
        rpc_id = int(str(event["id"]).split(":")[0])
        assert rpc_id in completed

    # Child slices carry the causal args that make the arrows greppable.
    queue_events = [e for e in events if e.get("cat") == "queue"]
    linked = [e for e in queue_events if "trace_id" in e["args"]]
    assert linked
    for event in linked:
        assert event["args"]["trace_id"] == f"{event['args']['rpc_id']:032x}"


def test_chrome_trace_ordering_is_deterministic(traced_run):
    context, _metrics = traced_run
    doc_a = chrome_trace(context.tracer)
    doc_b = chrome_trace(context.tracer)
    assert json.dumps(doc_a, sort_keys=True) == json.dumps(doc_b, sort_keys=True)
    events = doc_a["traceEvents"]
    meta_len = sum(1 for e in events if e["ph"] == "M")
    assert all(e["ph"] == "M" for e in events[:meta_len])
    body = events[meta_len:]
    keys = [
        (e.get("ts", 0.0), e["pid"], str(e.get("tid", "")), e["name"])
        for e in body
    ]
    assert keys == sorted(keys)


def test_tracer_counts_spans_dropped_instead_of_losing_them():
    from repro.rpc.message import Rpc

    tracer = Tracer()
    rpc = Rpc(src=0, dst=1, priority=Priority.PC, payload_bytes=4096,
              issued_ns=0)
    rpc.completed_ns = 10_000
    rpc.rnl_ns = 10_000
    # Completion and termination of RPCs the tracer never saw issue.
    tracer.on_rpc_completed(rpc, slo_met=True)
    tracer.on_rpc_terminated(rpc)
    assert tracer.spans_dropped == 2
    assert "dropped" in rpc_report(tracer)
    doc = chrome_trace(tracer)
    assert doc["otherData"]["spans_dropped"] == 2


def test_export_writers_round_trip(tmp_path, traced_run):
    context, _metrics = traced_run
    tracer = context.tracer

    trace_path = write_chrome_trace(tmp_path / "t" / "run.trace.json", tracer)
    with open(trace_path) as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]

    jsonl_path = write_jsonl(tmp_path / "run.spans.jsonl", tracer)
    records = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
    by_type = {}
    for record in records:
        by_type[record["type"]] = by_type.get(record["type"], 0) + 1
    assert by_type["rpc"] == len(tracer.rpc_spans)
    assert by_type["queue"] == len(tracer.queue_spans)
    assert by_type["tx"] == len(tracer.tx_spans)
    assert by_type["admission"] == len(tracer.admission_events)

    context.registry.series.append((0, context.registry.snapshot()))
    series_path = write_metrics_series(tmp_path / "run.metrics.jsonl", context.registry)
    lines = series_path.read_text().splitlines()
    assert lines
    first = json.loads(lines[0])
    assert first["t_ns"] == 0 and isinstance(first["metrics"], dict)
    context.registry.series.pop()


def test_text_reports_name_top_contributors(traced_run):
    context, metrics = traced_run
    tracer = context.tracer

    residency = queue_residency_report(tracer, top_k=2)
    assert "queue residency by QoS" in residency
    assert "QoS 0" in residency
    # The report names concrete queues with their share of residency.
    assert any(node in residency for node in {s.node for s in tracer.queue_spans})

    rpcs = rpc_report(tracer)
    assert f"{metrics.issued_count} issued" in rpcs
    assert "downgraded" in rpcs and "p_admit adjustments" in rpcs

    full = trace_report(tracer, context.profiler, top_k=3)
    assert residency.splitlines()[0] in full
    assert "profile:" in full

    assert queue_residency_report(Tracer()) == (
        "queue residency: no queue spans recorded"
    )
    assert rpc_report(Tracer()) == "rpcs: no spans recorded"


# ----------------------------------------------------------------------
# Runtime opt-in
# ----------------------------------------------------------------------
def test_env_var_activates_tracing_lazily(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert trace_enabled_by_env()
    ctx = active()
    assert ctx is not None and isinstance(active_tracer(), Tracer)
    deactivate()

    for falsey in ("", "0", "false", "no", "off", " OFF "):
        monkeypatch.setenv("REPRO_TRACE", falsey)
        assert not trace_enabled_by_env()
        assert active() is None and active_tracer() is None

    monkeypatch.delenv("REPRO_TRACE")
    assert active() is None


def test_activate_binds_components_at_construction(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    explicit = ObsContext(tracer=Tracer())  # tracer only, no profiler
    assert activate(explicit) is explicit
    assert active_tracer() is explicit.tracer
    assert active().profiler is None
    sim = Simulator()
    assert sim.profiler is None  # engine picked the plain run loop
    deactivate()
    assert active() is None


# ----------------------------------------------------------------------
# Wall-clock-span histogram accuracy + OpenMetrics exposition
# ----------------------------------------------------------------------
def test_histogram_percentiles_vs_exact_order_statistics_us_to_s_span():
    """Live attempt latencies span five decades (fast loopback RPCs in
    the tens of µs, queued ones in ms, deadline stragglers near 1 s);
    the fixed log bounds must hold their one-bucket accuracy bound
    (~33% at 8/decade) across that whole span, per mode and mixed."""
    rng = random.Random(7)
    modes = [
        lambda: rng.uniform(20e3, 80e3),        # 20-80 us: loopback RTT
        lambda: rng.lognormvariate(16.1, 0.5),  # ~10 ms: queued behind work
        lambda: rng.uniform(0.5e9, 1.0e9),      # 0.5-1 s: deadline stragglers
    ]
    weights = (0.70, 0.25, 0.05)
    samples = []
    for _ in range(20_000):
        pick = rng.random()
        mode = 0 if pick < weights[0] else (1 if pick < weights[0] + weights[1] else 2)
        samples.append(modes[mode]())

    hist = Histogram("attempt_latency_ns")
    for s in samples:
        hist.observe(s)

    assert hist.quantile(0.0) == pytest.approx(min(samples))
    assert hist.quantile(1.0) == pytest.approx(max(samples))
    # 10^(1/8) bucket ratio: interpolation error is bounded by one
    # bucket's relative width at every interior percentile, including
    # the ones that land inside each mode and in the gaps between them.
    for pctl in (1.0, 10.0, 25.0, 50.0, 69.0, 75.0, 90.0, 95.0, 99.0, 99.9):
        exact = exact_percentile(samples, pctl)
        assert hist.percentile(pctl) == pytest.approx(exact, rel=0.34), pctl
    # Percentiles are monotone in the percentile argument.
    grid = [hist.percentile(p) for p in range(0, 101, 5)]
    assert grid == sorted(grid)


def test_openmetrics_exposition_format():
    """Golden-format assertions for the scrape body: metadata lines,
    counter suffix, escaped label values, cumulative buckets, EOF."""
    from repro.obs.metrics import OPENMETRICS_CONTENT_TYPE, render_openmetrics

    reg = MetricsRegistry()
    reg.counter("rpc_issued", qos=0).inc(7)
    reg.counter("rpc_issued", qos=1).inc(2)
    reg.gauge("p_admit", qos=0, node='c0->srv "odd"\\path\nx').set(0.55)
    hist = reg.histogram("rnl_norm_ns", qos=0, bounds=(100.0, 1000.0))
    for value in (50.0, 500.0, 5000.0):
        hist.observe(value)

    text = render_openmetrics(reg)
    lines = text.splitlines()

    assert "version=1.0.0" in OPENMETRICS_CONTENT_TYPE
    assert text.endswith("# EOF\n")
    assert lines[-1] == "# EOF"

    # Every family announces TYPE then HELP, exactly once.
    assert "# TYPE repro_rpc_issued counter" in lines
    assert "# TYPE repro_p_admit gauge" in lines
    assert "# TYPE repro_rnl_norm_ns histogram" in lines
    for family in ("repro_rpc_issued", "repro_p_admit", "repro_rnl_norm_ns"):
        type_lines = [l for l in lines if l.startswith(f"# TYPE {family} ")]
        help_lines = [l for l in lines if l.startswith(f"# HELP {family} ")]
        assert len(type_lines) == 1 and len(help_lines) == 1
        assert lines.index(type_lines[0]) < lines.index(help_lines[0])

    # Counters get the mandated _total suffix and keep label order.
    assert 'repro_rpc_issued_total{qos="0"} 7' in lines
    assert 'repro_rpc_issued_total{qos="1"} 2' in lines

    # Label values escape backslash, double quote, and newline.
    gauge_line = next(l for l in lines if l.startswith("repro_p_admit{"))
    assert '\\"odd\\"' in gauge_line
    assert "\\\\path" in gauge_line
    assert "\\n" in gauge_line and "\n" not in gauge_line
    assert gauge_line.endswith(" 0.55")

    # Histogram buckets are cumulative, end at le="+Inf" == _count, and
    # _sum carries the total.
    buckets = [l for l in lines if l.startswith("repro_rnl_norm_ns_bucket")]
    assert buckets == [
        'repro_rnl_norm_ns_bucket{qos="0",le="100"} 1',
        'repro_rnl_norm_ns_bucket{qos="0",le="1000"} 2',
        'repro_rnl_norm_ns_bucket{qos="0",le="+Inf"} 3',
    ]
    assert 'repro_rnl_norm_ns_count{qos="0"} 3' in lines
    assert 'repro_rnl_norm_ns_sum{qos="0"} 5550' in lines


def test_openmetrics_rendering_is_read_only_and_monotone():
    from repro.obs.metrics import render_openmetrics

    reg = MetricsRegistry()
    counter = reg.counter("rpc_issued", qos=0)
    counter.inc(3)
    first = render_openmetrics(reg)
    assert render_openmetrics(reg) == first  # no state perturbed
    counter.inc()
    second = render_openmetrics(reg)
    assert 'repro_rpc_issued_total{qos="0"} 3' in first
    assert 'repro_rpc_issued_total{qos="0"} 4' in second


def test_openmetrics_sanitizes_hostile_family_names():
    from repro.obs.metrics import render_openmetrics

    reg = MetricsRegistry()
    reg.counter("2weird-name.x").inc()
    text = render_openmetrics(reg, prefix="")
    assert "# TYPE _2weird_name_x counter" in text
    assert "_2weird_name_x_total 1" in text
