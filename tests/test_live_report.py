"""Report-layer ingestion of live run directories.

A synthetic log directory — hand-written JSONL in the exact shapes the
live runtime emits, no subprocesses — goes through
:func:`load_live_run` and must come out as a run document that the
whole report stack (summarize / render_text / render_html /
diff_summaries) consumes exactly like a sim sweep's.  The CLI path
(``python -m repro report <dir>``) is covered on top.
"""

import json

import pytest

from repro.analysis.report import (
    diff_summaries,
    is_live_run_dir,
    load_live_run,
    render_html,
    render_text,
    summarize,
)
from repro.cli import main
from repro.live.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import AdmissionEvent, QueueSpan, RpcSpan

MS = 1_000_000
S = 1_000_000_000

HEADER = {
    "role": "server",
    "port": 40000,
    "clients": 2,
    "duration_s": 4.0,
    "seed": 7,
    "overload_factor": 1.8,
    "service_ms_per_mtu": 2.5,
    "scavenger_fraction": 0.25,
    "payload_bytes": 4096,
    "slo_ms": 25.0,
    "slo_percentile": 90.0,
    "capacity_rps": 400.0,
}


def _rpc(rpc_id, issued_ns, rnl_ns, qos=0, slo_met=True, terminated=False):
    return RpcSpan(
        rpc_id=rpc_id, src=0, dst=0, qos_requested=qos, qos_run=qos,
        downgraded=False, issued_ns=issued_ns, payload_bytes=4096,
        size_mtus=1,
        completed_ns=None if terminated else issued_ns + rnl_ns,
        rnl_ns=None if terminated else rnl_ns,
        slo_met=slo_met, terminated=terminated,
    )


ALERT = {
    "time_ns": 1 * S, "qos": 0, "state": "firing", "burn_short": 5.0,
    "burn_long": 5.0, "miss_rate_short": 0.5, "miss_rate_long": 0.5,
    "allowed_miss_rate": 0.1, "short_window_ns": 400 * MS,
    "long_window_ns": 1333 * MS,
}


def make_live_dir(tmp_path, with_metrics=True):
    run_dir = tmp_path / "live-synth"
    run_dir.mkdir()
    with EventLog(run_dir / "server.jsonl") as log:
        log.run_header(**HEADER)
        for i in range(8):
            log.queue(QueueSpan(
                node="srv", qos=i % 2, enqueued_ns=i * 100 * MS,
                dequeued_ns=i * 100 * MS + 5 * MS, size_bytes=4096, kind=0,
            ))
        log.run_header(role="server", served=8)
    for client in ("c0", "c1"):
        with EventLog(run_dir / f"{client}.jsonl") as log:
            log.run_header(role="client", client=client,
                           **{k: v for k, v in HEADER.items()
                              if k not in ("role", "port")})
            channel = f"{client}->srv"
            for i, p in enumerate((0.8, 0.6, 0.5, 0.55)):
                log.admission(AdmissionEvent(
                    time_ns=(i + 1) * 800 * MS, channel=channel, qos=0,
                    p_admit=p, kind="decrease" if p < 0.8 else "increase",
                ))
            for i in range(20):
                slow = i % 4 == 0
                log.rpc(_rpc(i + 1, i * 180 * MS,
                             rnl_ns=40 * MS if slow else 8 * MS,
                             slo_met=not slow))
            log.rpc(_rpc(99, 3_700 * MS, 0, slo_met=False, terminated=True))
            log.rpc(_rpc(100, 500 * MS, 12 * MS, qos=1, slo_met=None))
            # The same alert lands in the event log AND the metrics log
            # (the sampler writes both); ingestion must dedupe it.
            log.alert(dict(ALERT))
    if with_metrics:
        registry = MetricsRegistry()
        rnl = registry.histogram("rnl_norm_ns", qos=0)
        done = registry.counter("rpc_completed_bytes", qos=0)
        with EventLog(run_dir / "metrics-c0.jsonl") as log:
            for t in range(1, 5):
                for _ in range(5):
                    rnl.observe(8e6 * t)
                done.inc(5 * 4096)
                record = {
                    "type": "metrics", "time_ns": t * S,
                    "metrics": registry.snapshot(include_buckets=True),
                }
                if t == 1:
                    record["bounds"] = registry.all_histogram_bounds()
                log.write_record(record)
            log.write_record({**ALERT, "type": "alert"})
    return run_dir


class TestLoadLiveRun:
    def test_is_live_run_dir(self, tmp_path):
        run_dir = make_live_dir(tmp_path)
        assert is_live_run_dir(run_dir)
        assert not is_live_run_dir(tmp_path)  # no server.jsonl
        assert not is_live_run_dir(run_dir / "server.jsonl")  # not a dir

    def test_doc_shape_matches_sim_documents(self, tmp_path):
        doc = load_live_run(make_live_dir(tmp_path))
        assert doc["experiment"] == "live"
        assert doc["run_id"] == "live-synth"
        assert doc["checks"]["passed"] is True
        (point,) = doc["points"]
        assert point["params"]["seed"] == 7
        assert point["params"]["overload_factor"] == 1.8
        assert "port" not in point["params"]  # not a workload field
        row = point["row"]
        assert row["calls"] == 44  # 22 spans per client
        assert row["completed"] == 42
        assert row["terminated"] == 2
        assert row["served"] == 8

    def test_series_panels(self, tmp_path):
        series = load_live_run(make_live_dir(tmp_path))["series"]
        assert set(series["p_admit"]) == {"c0->srv/qos0", "c1->srv/qos0"}
        for track in series["p_admit"].values():
            assert track[0][1] == 1.0  # grid-filled from the 1.0 start
            assert track[-1][1] == 0.55
        assert series["slo_ns"] == {"0": 25.0 * MS}
        # 5 of every 20 tracked QoS-0 RPCs missed, plus the terminated
        # one: 6/21 per client.
        assert series["slo_miss_rate"]["0"] == pytest.approx(6 / 21)
        assert "srv/qos0" in series["queue_residency"]
        # The rnl panel comes from differenced metrics snapshots.
        assert "p99" in series["rnl"]["0"]
        assert series["goodput_gbps"]["0"]
        # One alert, deduped across the event and metrics logs.
        assert len(series["alerts"]) == 1
        assert series["alerts"][0]["state"] == "firing"

    def test_loads_without_metrics_logs(self, tmp_path):
        doc = load_live_run(make_live_dir(tmp_path, with_metrics=False))
        series = doc["series"]
        assert series["rnl"] == {}  # no snapshots to difference
        assert len(series["alerts"]) == 1  # event-log copy still there
        assert summarize(doc)["qos"]["0"]["slo_miss_rate"] is not None

    def test_not_a_live_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_live_run(tmp_path)


class TestRenderAndDiff:
    def test_render_text_has_live_panels(self, tmp_path):
        text = render_text(load_live_run(make_live_dir(tmp_path)))
        assert "digest n/a (live)" in text
        assert "p_admit convergence" in text
        assert "SLO burn-rate alerts: 1 transition" in text
        assert "firing" in text
        assert "still firing at end of run: QoS 0" in text

    def test_render_html_self_contained(self, tmp_path):
        html = render_html(load_live_run(make_live_dir(tmp_path)))
        assert html.startswith("<!doctype html>")
        assert "<script" not in html  # static SVG, no JS
        assert "live-synth" in html

    def test_self_diff_is_clean_and_gate_trips(self, tmp_path):
        doc = load_live_run(make_live_dir(tmp_path))
        base = summarize(doc)
        assert diff_summaries(base, base).ok
        shifted = json.loads(json.dumps(base))
        shifted["points"][0]["row"]["completed"] = 10
        assert not diff_summaries(base, shifted).ok


class TestCli:
    def test_report_on_live_dir_writes_html_inside_it(self, tmp_path, capsys):
        run_dir = make_live_dir(tmp_path)
        summary_path = tmp_path / "live.summary.json"
        assert main([
            "report", str(run_dir), "--emit-summary", str(summary_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO burn-rate alerts" in out
        assert (run_dir / "report.html").is_file()
        assert summary_path.is_file()

    def test_diff_live_dir_against_emitted_summary(self, tmp_path, capsys):
        run_dir = make_live_dir(tmp_path)
        summary_path = tmp_path / "golden.json"
        main(["report", str(run_dir), "--no-html",
              "--emit-summary", str(summary_path)])
        capsys.readouterr()
        assert main([
            "report", "--diff", str(summary_path), str(run_dir),
        ]) == 0
        assert "no threshold breaches" in capsys.readouterr().out
