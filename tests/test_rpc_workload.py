"""Unit tests for workload generators and the burst pattern."""

import random

import pytest

from repro.core.qos import Priority
from repro.rpc.sizes import FixedSize, production_mixture
from repro.rpc.workload import (
    BurstPattern,
    OpenLoopSource,
    byte_mix_to_rpc_mix,
    steady_pattern,
    _poisson_draw,
)
from repro.sim.engine import Simulator, ns_from_ms


class StubStack:
    """Captures issue() calls without a network."""

    def __init__(self, host_id=0):
        self.calls = []
        self.host = type("H", (), {"host_id": host_id})()

    def issue(self, dst, priority, payload):
        self.calls.append((dst, priority, payload))


def test_burst_pattern_fractions():
    p = BurstPattern(mu=0.8, rho=1.4, period_ns=100_000)
    assert p.on_fraction == pytest.approx(0.8 / 1.4)
    assert p.on_ns == int(100_000 * 0.8 / 1.4)


def test_burst_pattern_validation():
    with pytest.raises(ValueError):
        BurstPattern(mu=0.0, rho=1.4)
    with pytest.raises(ValueError):
        BurstPattern(mu=1.5, rho=1.4)
    with pytest.raises(ValueError):
        BurstPattern(mu=0.5, rho=1.0, period_ns=0)


def test_steady_pattern_always_on():
    p = steady_pattern(0.9)
    assert p.on_fraction == pytest.approx(1.0)
    assert p.mu == p.rho == 0.9


def test_open_loop_offered_load_close_to_target():
    """Issued bytes over the run should approximate mu * line_rate."""
    sim = Simulator()
    stack = StubStack()
    pattern = BurstPattern(mu=0.8, rho=1.4, period_ns=100_000)
    OpenLoopSource(
        sim, stack, [1], {Priority.PC: 1.0}, FixedSize(32 * 1024), pattern,
        line_rate_bps=100e9, rng=random.Random(1),
    )
    horizon_ns = ns_from_ms(10)
    sim.run(until=horizon_ns)
    issued_bytes = sum(p for _, __, p in stack.calls)
    target = 0.8 * 100e9 * (horizon_ns / 1e9) / 8
    assert issued_bytes == pytest.approx(target, rel=0.1)


def test_arrivals_only_in_on_window():
    sim = Simulator()
    stack = StubStack()
    issue_times = []
    orig = stack.issue
    stack.issue = lambda *a: (issue_times.append(sim.now), orig(*a))
    pattern = BurstPattern(mu=0.5, rho=1.0, period_ns=100_000)  # 50% duty
    OpenLoopSource(sim, stack, [1], {Priority.PC: 1.0}, FixedSize(4096),
                   pattern, rng=random.Random(2))
    sim.run(until=400_000)
    assert issue_times
    for t in issue_times:
        assert (t % 100_000) <= 50_000


def test_deterministic_mode_even_spacing():
    sim = Simulator()
    stack = StubStack()
    pattern = BurstPattern(mu=0.8, rho=1.6, period_ns=100_000)
    OpenLoopSource(sim, stack, [1], {Priority.PC: 1.0}, FixedSize(4096),
                   pattern, rng=random.Random(3), deterministic=True)
    sim.run(until=99_999)
    n = len(stack.calls)
    expected = 1.6 * 100e9 * (pattern.on_ns / 1e9) / (4096 * 8)
    assert n == pytest.approx(expected, rel=0.02)


def test_priority_mix_respected():
    sim = Simulator()
    stack = StubStack()
    OpenLoopSource(
        sim, stack, [1],
        {Priority.PC: 0.7, Priority.BE: 0.3},
        FixedSize(32 * 1024), steady_pattern(1.0),
        rng=random.Random(4),
    )
    sim.run(until=ns_from_ms(3))
    prios = [p for _, p, __ in stack.calls]
    frac_pc = prios.count(Priority.PC) / len(prios)
    assert frac_pc == pytest.approx(0.7, abs=0.05)
    assert Priority.NC not in prios


def test_stop_ns_halts_issuance():
    sim = Simulator()
    stack = StubStack()
    OpenLoopSource(sim, stack, [1], {Priority.PC: 1.0}, FixedSize(4096),
                   steady_pattern(1.0), rng=random.Random(5), stop_ns=50_000)
    sim.run(until=ns_from_ms(1))
    assert stack.calls
    # nothing issued after the stop time: re-run longer changes nothing
    count = len(stack.calls)
    sim.run(until=ns_from_ms(2))
    assert len(stack.calls) == count


def test_destinations_uniform():
    sim = Simulator()
    stack = StubStack()
    OpenLoopSource(sim, stack, [1, 2, 3], {Priority.PC: 1.0}, FixedSize(4096),
                   steady_pattern(1.0), rng=random.Random(6))
    sim.run(until=ns_from_ms(1))
    dsts = [d for d, _, __ in stack.calls]
    for d in (1, 2, 3):
        assert dsts.count(d) / len(dsts) == pytest.approx(1 / 3, abs=0.05)


def test_source_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        OpenLoopSource(sim, StubStack(), [], {Priority.PC: 1.0},
                       FixedSize(4096), steady_pattern(1.0))
    with pytest.raises(ValueError):
        OpenLoopSource(sim, StubStack(), [1], {Priority.PC: 0.0},
                       FixedSize(4096), steady_pattern(1.0))


def test_byte_mix_to_rpc_mix_weights_by_inverse_mean():
    sizes = production_mixture()
    rpc_mix = byte_mix_to_rpc_mix(
        {Priority.PC: 0.5, Priority.NC: 0.3, Priority.BE: 0.2}, sizes
    )
    # Realized byte mix from these RPC weights must be the target.
    byte_share_pc = rpc_mix[Priority.PC] * sizes[Priority.PC].mean_bytes()
    byte_share_be = rpc_mix[Priority.BE] * sizes[Priority.BE].mean_bytes()
    assert byte_share_pc / byte_share_be == pytest.approx(0.5 / 0.2, rel=1e-6)
    assert sum(rpc_mix.values()) == pytest.approx(1.0)


def test_poisson_draw_mean():
    rng = random.Random(7)
    for lam in (0.5, 5.0, 200.0):
        draws = [_poisson_draw(rng, lam) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(lam, rel=0.1)
    assert _poisson_draw(rng, 0.0) == 0
