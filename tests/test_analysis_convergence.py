"""Steady-state detection on synthetic AIMD traces.

Every trace here is constructed so its convergence time is known by
design: a transient at one level, a step to the settled level at a
chosen sample index, then a deterministic AIMD-style sawtooth.  With
the detector's default 5-sample centered smoothing, the first smoothed
point made purely of post-step samples is two samples after the step —
the expected convergence time is exact, not approximate.
"""

import pytest

from repro.analysis.convergence import (
    DEFAULT_SMOOTH_WINDOW,
    detect,
    detect_tracks,
    per_qos_convergence,
)

#: 0.1 ms between samples — the registry sampler's typical cadence.
STEP_NS = 100_000

#: With a centered window of 5, the smoothed trace leaves the transient
#: behind two samples after the step.
SMOOTH_LAG = DEFAULT_SMOOTH_WINDOW // 2


def _times(n):
    return [i * STEP_NS for i in range(n)]


def aimd_trace(n=100, step_at=60, transient=0.2, settled=0.8, saw=0.01):
    """Transient at ``transient``, step to ``settled`` at sample
    ``step_at``, then a deterministic sawtooth of amplitude ``saw``."""
    trace = []
    for i, t in enumerate(_times(n)):
        if i < step_at:
            trace.append((t, transient))
        else:
            offset = saw if (i - step_at) % 2 == 0 else -saw
            trace.append((t, settled + offset))
    return trace


def sawtooth_trace(n=100, settled=0.9, saw=0.01):
    """Pure AIMD sawtooth: in band from the first sample."""
    return [
        (t, settled + (saw if i % 2 == 0 else -saw))
        for i, t in enumerate(_times(n))
    ]


def ramp_trace(n=100):
    """Monotone ramp: never enters a band around its tail mean."""
    return [(t, i / n) for i, t in enumerate(_times(n))]


# ----------------------------------------------------------------------
# detect: single trajectories
# ----------------------------------------------------------------------
def test_known_convergence_time_is_exact():
    step_at = 60
    verdict = detect(aimd_trace(step_at=step_at))
    assert verdict.converged
    assert verdict.convergence_time_ns == (step_at + SMOOTH_LAG) * STEP_NS
    assert verdict.settled_value == pytest.approx(0.8, abs=0.005)
    assert 0.0 < verdict.oscillation_band <= 0.02
    assert verdict.samples == 100


def test_convergence_time_tracks_the_step():
    early = detect(aimd_trace(step_at=20))
    late = detect(aimd_trace(step_at=70))
    assert early.convergence_time_ns == (20 + SMOOTH_LAG) * STEP_NS
    assert late.convergence_time_ns == (70 + SMOOTH_LAG) * STEP_NS
    assert early.convergence_time_ns < late.convergence_time_ns


def test_sawtooth_from_start_converges_immediately():
    verdict = detect(sawtooth_trace())
    assert verdict.converged
    assert verdict.convergence_time_ns == 0
    assert verdict.settled_value == pytest.approx(0.9, abs=0.005)


def test_ramp_never_converges():
    verdict = detect(ramp_trace())
    assert not verdict.converged
    assert verdict.convergence_time_ns is None
    # The settled value and band are still reported (the tail mean).
    assert 0.0 < verdict.settled_value < 1.0


def test_empty_trace_raises():
    with pytest.raises(ValueError):
        detect([])


def test_as_dict_is_json_shaped():
    d = detect(aimd_trace()).as_dict()
    assert d["converged"] is True
    assert isinstance(d["convergence_time_ns"], int)
    assert set(d) == {
        "converged",
        "convergence_time_ns",
        "settled_value",
        "oscillation_band",
        "samples",
    }


# ----------------------------------------------------------------------
# detect_tracks / per_qos_convergence: the series rollup
# ----------------------------------------------------------------------
def test_detect_tracks_skips_empty():
    out = detect_tracks({"a": aimd_trace(), "empty": []})
    assert set(out) == {"a"}
    assert out["a"].converged


def test_per_qos_rollup_takes_the_slowest_channel():
    tracks = {
        "h0->h1/qos0": aimd_trace(step_at=60),
        "h0->h2/qos0": aimd_trace(step_at=30),
        "h0->h1/qos1": sawtooth_trace(),
        "not-a-channel": ramp_trace(),  # unparseable key: ignored
    }
    rollup = per_qos_convergence(tracks)
    assert set(rollup) == {0, 1}

    qos0 = rollup[0]
    assert qos0.channels == 2 and qos0.converged_channels == 2
    assert qos0.converged
    # Fleet-level convergence is the slowest channel's.
    assert qos0.convergence_time_ns == (60 + SMOOTH_LAG) * STEP_NS
    assert qos0.settled_value == pytest.approx(0.8, abs=0.005)

    qos1 = rollup[1]
    assert qos1.channels == 1
    assert qos1.convergence_time_ns == 0
    assert qos1.settled_value == pytest.approx(0.9, abs=0.005)


def test_one_unsettled_channel_fails_the_whole_qos():
    tracks = {
        "h0->h1/qos2": ramp_trace(),
        "h0->h2/qos2": sawtooth_trace(),
    }
    rollup = per_qos_convergence(tracks)
    qos2 = rollup[2]
    assert qos2.channels == 2 and qos2.converged_channels == 1
    assert not qos2.converged
    assert qos2.convergence_time_ns is None
    d = qos2.as_dict()
    assert d["converged"] is False and d["convergence_time_ns"] is None
