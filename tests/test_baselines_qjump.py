"""Unit tests for the QJump baseline (token buckets + throttled flows)."""

import pytest

from repro.baselines.qjump import (
    QJumpEndpoint,
    TokenBucket,
    qjump_level_rates,
    qjump_scheduler_factory,
    qjump_transport_config,
)
from repro.net.queues import StrictPriorityScheduler
from repro.net.topology import build_star
from repro.sim.engine import Simulator, ns_from_ms
from repro.transport.base import Message


def test_token_bucket_allows_burst():
    tb = TokenBucket(rate_bps=8e9, burst_bytes=3000)
    assert tb.consume_or_wait_ns(1000, 0) == 0
    assert tb.consume_or_wait_ns(1000, 0) == 0
    assert tb.consume_or_wait_ns(1000, 0) == 0
    assert tb.consume_or_wait_ns(1000, 0) > 0


def test_token_bucket_refills_at_rate():
    tb = TokenBucket(rate_bps=8e9, burst_bytes=1000)  # 1 byte per ns
    assert tb.consume_or_wait_ns(1000, 0) == 0
    wait = tb.consume_or_wait_ns(1000, 0)
    assert wait == 1000  # need 1000 bytes at 1 B/ns
    assert tb.consume_or_wait_ns(1000, 1000) == 0


def test_token_bucket_cap():
    tb = TokenBucket(rate_bps=8e9, burst_bytes=1000)
    tb.consume_or_wait_ns(1000, 0)
    # Long idle: tokens cap at burst size, not unbounded.
    assert tb.consume_or_wait_ns(1000, 10**9) == 0
    assert tb.consume_or_wait_ns(1000, 10**9) > 0


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(0, 100)
    with pytest.raises(ValueError):
        TokenBucket(1e9, 0)


def test_level_rates_defaults():
    rates = qjump_level_rates(100e9, num_hosts=8)
    assert rates[0] == pytest.approx(50e9)  # half line rate
    assert rates[1] == pytest.approx(75e9)
    assert 2 not in rates  # bulk class unthrottled


def test_level_rates_custom_factors():
    rates = qjump_level_rates(100e9, num_hosts=10, throttle_factors=(1.0,))
    assert rates[0] == pytest.approx(10e9)  # worst-case fair share
    assert len(rates) == 1


def test_level_rates_validation():
    with pytest.raises(ValueError):
        qjump_level_rates(100e9, num_hosts=1)


def test_qjump_scheduler_is_strict_priority():
    sched = qjump_scheduler_factory(3)()
    assert isinstance(sched, StrictPriorityScheduler)
    assert sched.num_classes == 3


def test_qjump_flow_rate_limited_end_to_end():
    """A throttled level's goodput must not exceed its cap."""
    sim = Simulator()
    net = build_star(sim, 3, lambda: StrictPriorityScheduler(3, 4 * 1024 * 1024),
                     line_rate_bps=100e9)
    rates = {0: 10e9}  # QoS 0 capped at 10 Gbps per host
    config = qjump_transport_config(ack_bypass=True)
    eps = [QJumpEndpoint(sim, h, rates, config) for h in net.hosts]
    for a in eps:
        for b in eps:
            if a is not b:
                a.register_peer(b)
    done_bytes = {"total": 0}

    def on_done(msg):
        done_bytes["total"] += msg.payload_bytes

    for _ in range(200):
        eps[0].send_message(Message(dst=2, payload_bytes=32 * 1024, qos=0,
                                    on_complete=on_done))
    horizon_ms = 2
    sim.run(until=ns_from_ms(horizon_ms))
    achieved_gbps = done_bytes["total"] * 8 / (horizon_ms * 1e6)
    assert achieved_gbps <= 11.0  # cap + burst slack


def test_qjump_unthrottled_level_runs_at_line_rate():
    sim = Simulator()
    net = build_star(sim, 3, lambda: StrictPriorityScheduler(3, 4 * 1024 * 1024),
                     line_rate_bps=100e9)
    config = qjump_transport_config(ack_bypass=True)
    eps = [QJumpEndpoint(sim, h, {0: 10e9}, config) for h in net.hosts]
    for a in eps:
        for b in eps:
            if a is not b:
                a.register_peer(b)
    done = []
    for _ in range(100):
        eps[0].send_message(Message(dst=2, payload_bytes=32 * 1024, qos=2,
                                    on_complete=done.append))
    sim.run(until=ns_from_ms(2))
    assert len(done) == 100
