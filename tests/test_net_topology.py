"""Unit tests for topology builders."""

import pytest

from repro.net.packet import Packet
from repro.net.topology import build_star, build_two_tier, wfq_factory
from repro.sim.engine import Simulator


def test_star_builds_hosts_and_routes():
    sim = Simulator()
    net = build_star(sim, 4, wfq_factory((8, 4, 1)))
    assert net.num_hosts == 4
    assert len(net.switches) == 1
    switch = net.switches[0]
    assert set(switch.routes) == {0, 1, 2, 3}
    for h in net.hosts:
        assert h.nic is not None
        assert h.nic.peer is switch


def test_star_rejects_single_host():
    with pytest.raises(ValueError):
        build_star(Simulator(), 1, wfq_factory((4, 1)))


def test_star_end_to_end_delivery():
    sim = Simulator()
    net = build_star(sim, 3, wfq_factory((8, 4, 1)), line_rate_bps=1e9,
                     prop_delay_ns=100)
    got = []
    net.hosts[2].handler = got.append
    net.hosts[0].send(Packet(0, 2, 1000, qos=0))
    sim.run()
    assert len(got) == 1
    # Two hops: 2 serializations + 2 propagations.
    assert sim.now == 2 * 8000 + 2 * 100


def test_star_each_port_gets_fresh_scheduler():
    sim = Simulator()
    net = build_star(sim, 3, wfq_factory((4, 1)))
    schedulers = {id(p.scheduler) for p in net.host_ports.values()}
    schedulers |= {id(p.scheduler) for p in net.switch_ports.values()}
    assert len(schedulers) == 6


def test_two_tier_cross_tor_routing():
    sim = Simulator()
    net = build_two_tier(sim, num_tors=2, hosts_per_tor=2,
                         scheduler_factory=wfq_factory((8, 4, 1)),
                         line_rate_bps=1e9, uplink_oversubscription=2.0)
    assert net.num_hosts == 4
    got = []
    net.hosts[3].handler = got.append
    net.hosts[0].send(Packet(0, 3, 1000))  # tor0 -> spine -> tor1
    sim.run()
    assert len(got) == 1


def test_two_tier_same_tor_stays_local():
    sim = Simulator()
    net = build_two_tier(sim, num_tors=2, hosts_per_tor=2,
                         scheduler_factory=wfq_factory((8, 4, 1)))
    spine = net.switches[0]
    before = spine.packets_forwarded
    got = []
    net.hosts[1].handler = got.append
    net.hosts[0].send(Packet(0, 1, 1000))
    sim.run()
    assert len(got) == 1
    assert spine.packets_forwarded == before  # never left the ToR


def test_two_tier_uplink_oversubscribed():
    sim = Simulator()
    net = build_two_tier(sim, num_tors=2, hosts_per_tor=4,
                         scheduler_factory=wfq_factory((4, 1)),
                         line_rate_bps=100e9, uplink_oversubscription=2.0)
    tor0 = net.switches[1]
    uplink = tor0.ports[0]
    assert uplink.rate_bps == pytest.approx(4 * 100e9 / 2.0)


def test_two_tier_validation():
    with pytest.raises(ValueError):
        build_two_tier(Simulator(), 0, 2, wfq_factory((4, 1)))
    with pytest.raises(ValueError):
        build_two_tier(Simulator(), 2, 2, wfq_factory((4, 1)),
                       uplink_oversubscription=0)


def test_egress_port_accessor():
    sim = Simulator()
    net = build_star(sim, 3, wfq_factory((4, 1)))
    port = net.egress_port_to(1)
    assert port.peer is net.hosts[1]
