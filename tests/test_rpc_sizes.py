"""Unit + property tests for RPC size distributions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qos import Priority
from repro.net.packet import MTU_BYTES
from repro.rpc.sizes import (
    ChoiceSize,
    FixedSize,
    LogNormalSize,
    production_mixture,
    production_size_dist,
)


def test_fixed_size():
    d = FixedSize(32 * 1024)
    rng = random.Random(0)
    assert d.sample(rng) == 32 * 1024
    assert d.mean_bytes() == 32 * 1024


def test_fixed_size_validation():
    with pytest.raises(ValueError):
        FixedSize(0)


def test_choice_size_samples_only_options():
    d = ChoiceSize([(100, 1.0), (200, 1.0)])
    rng = random.Random(1)
    seen = {d.sample(rng) for _ in range(200)}
    assert seen == {100, 200}
    assert d.mean_bytes() == pytest.approx(150.0)


def test_choice_size_respects_weights():
    d = ChoiceSize([(100, 9.0), (200, 1.0)])
    rng = random.Random(2)
    samples = [d.sample(rng) for _ in range(5000)]
    frac_small = samples.count(100) / len(samples)
    assert frac_small == pytest.approx(0.9, abs=0.03)


def test_choice_size_validation():
    with pytest.raises(ValueError):
        ChoiceSize([])
    with pytest.raises(ValueError):
        ChoiceSize([(100, 0.0)])


def test_lognormal_truncation_bounds():
    d = LogNormalSize(median_bytes=8192, sigma=2.0, min_bytes=512,
                      max_bytes=100_000)
    rng = random.Random(3)
    for _ in range(2000):
        s = d.sample(rng)
        assert 512 <= s <= 100_000


def test_lognormal_median_roughly_right():
    d = LogNormalSize(median_bytes=8192, sigma=1.0, min_bytes=1,
                      max_bytes=10**9)
    rng = random.Random(4)
    samples = sorted(d.sample(rng) for _ in range(4001))
    median = samples[2000]
    assert median == pytest.approx(8192, rel=0.15)


def test_lognormal_mean_estimate_close_to_empirical():
    d = LogNormalSize(median_bytes=8192, sigma=1.3)
    rng = random.Random(5)
    empirical = sum(d.sample(rng) for _ in range(20000)) / 20000
    assert d.mean_bytes() == pytest.approx(empirical, rel=0.1)


def test_lognormal_validation():
    with pytest.raises(ValueError):
        LogNormalSize(0, 1.0)
    with pytest.raises(ValueError):
        LogNormalSize(100, 1.0, min_bytes=10, max_bytes=5)


def test_production_ordering_pc_smallest():
    """Fig 1 shape: PC RPCs are generally smaller than NC, NC than BE."""
    mix = production_mixture()
    means = {p: mix[p].mean_bytes() for p in Priority}
    assert means[Priority.PC] < means[Priority.NC] < means[Priority.BE]


def test_production_pc_has_large_tail():
    """There are high-priority large PC RPCs (size/priority misaligned)."""
    d = production_size_dist(Priority.PC)
    rng = random.Random(6)
    biggest = max(d.sample(rng) for _ in range(20000))
    assert biggest > 32 * MTU_BYTES  # well beyond the median


def test_production_supports_overlap():
    """The per-class distributions overlap: some BE RPCs are smaller
    than some PC RPCs — why size-based priority fails."""
    pc = production_size_dist(Priority.PC)
    be = production_size_dist(Priority.BE)
    rng = random.Random(7)
    pc_samples = sorted(pc.sample(rng) for _ in range(2000))
    be_samples = sorted(be.sample(rng) for _ in range(2000))
    assert be_samples[99] < pc_samples[-100]


@settings(max_examples=50, deadline=None)
@given(
    median=st.floats(min_value=600, max_value=10**6),
    sigma=st.floats(min_value=0.1, max_value=3.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_lognormal_always_within_bounds(median, sigma, seed):
    d = LogNormalSize(median, sigma, min_bytes=512, max_bytes=2**20)
    rng = random.Random(seed)
    for _ in range(50):
        assert 512 <= d.sample(rng) <= 2**20
    assert 512 <= d.mean_bytes() <= 2**20
