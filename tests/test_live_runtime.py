"""End-to-end orchestration of real live-mode processes.

A short (1 s) run of the full topology — spawned server process, two
spawned client processes, real loopback sockets — must come back clean:
zero exit codes, a stats report per client, and JSONL logs whose record
stream is well-formed and carries the spans the convergence tooling
consumes.  The CI-spec 10-second convergence-gated run lives in the
``live-smoke`` CI job (and behind ``REPRO_LIVE_E2E=1`` here) so the
tier-1 suite stays fast.
"""

import os

import pytest

from repro.live.convergence import compare_tracks, tracks_from_logs
from repro.live.events import read_events
from repro.live.runtime import run_live
from repro.live.simref import run_sim_reference
from repro.live.telemetry import TelemetryConfig
from repro.live.workload import LiveWorkload


@pytest.fixture(scope="module")
def short_run(tmp_path_factory):
    workload = LiveWorkload(clients=2, duration_s=1.0, seed=11)
    log_dir = tmp_path_factory.mktemp("live-short")
    return workload, run_live(workload, log_dir)


class TestShortRun:
    def test_clean_shutdown(self, short_run):
        _, result = short_run
        assert result.problems == ()
        assert result.ok
        assert result.exit_codes == (0, 0, 0)  # server first
        assert result.port > 0

    def test_one_stats_report_per_client(self, short_run):
        workload, result = short_run
        assert len(result.client_stats) == workload.clients
        for index, stats in enumerate(result.client_stats):
            assert stats["client"] == index
            assert stats["calls"] > 0
            # Every fired call is accounted for somewhere.
            assert stats["completed"] <= stats["calls"]

    def test_logs_exist_and_parse(self, short_run):
        _, result = short_run
        for path in (result.server_log, *result.client_logs):
            records = read_events(path)
            assert records[0]["type"] == "run"

    def test_server_log_carries_queue_spans(self, short_run):
        _, result = short_run
        types = {r["type"] for r in read_events(result.server_log)}
        assert "queue" in types

    def test_client_logs_carry_spans_and_admission_events(self, short_run):
        workload, result = short_run
        tracks = tracks_from_logs(result.client_logs)
        # Overload bites within the first second: the AIMD observer
        # recorded adjustments on each client's SLO channel.
        assert {
            f"{workload.client_id(i)}->srv/qos0"
            for i in range(workload.clients)
        } <= set(tracks)
        for path in result.client_logs:
            assert any(r["type"] == "rpc" for r in read_events(path))


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    workload = LiveWorkload(clients=2, duration_s=1.5, seed=11)
    log_dir = tmp_path_factory.mktemp("live-telemetry")
    result = run_live(workload, log_dir, telemetry=TelemetryConfig())
    return workload, result


class TestTelemetryRun:
    def test_armed_run_still_clean(self, telemetry_run):
        _, result = telemetry_run
        assert result.ok, result.problems
        assert result.metrics_port > 0

    def test_every_process_wrote_a_metrics_log(self, telemetry_run):
        workload, result = telemetry_run
        assert len(result.metrics_logs) == workload.clients + 1
        for path in result.metrics_logs:
            records = read_events(path)
            snapshots = [r for r in records if r["type"] == "metrics"]
            assert snapshots, path
            # The first snapshot carries the bucket-bounds sidecar once
            # histograms exist; every one carries the flat metrics map.
            assert all("metrics" in r for r in snapshots)

    def test_headers_carry_workload_and_metrics_port(self, telemetry_run):
        _, result = telemetry_run
        header = read_events(result.server_log)[0]
        assert header["metrics_port"] == result.metrics_port
        assert header["overload_factor"] == 1.8
        assert header["slo_ms"] == 25.0

    def test_live_dir_loads_as_report_document(self, telemetry_run):
        from repro.analysis.report import load_live_run, render_text

        _, result = telemetry_run
        doc = load_live_run(result.server_log.parent)
        assert doc["points"][0]["row"]["calls"] > 0
        assert doc["series"]["p_admit"]
        assert "p_admit convergence" in render_text(doc)


@pytest.mark.skipif(
    os.environ.get("REPRO_LIVE_E2E") != "1",
    reason="CI-spec 10 s sim-vs-live run; exercised by the live-smoke job",
)
def test_ci_spec_run_converges_to_sim_reference(tmp_path):
    workload = LiveWorkload()  # the `python -m repro live` defaults
    result = run_live(workload, tmp_path)
    assert result.ok, result.problems
    comparison = compare_tracks(
        run_sim_reference(workload),
        tracks_from_logs(result.client_logs),
        workload.duration_ns,
    )
    assert comparison.ok, comparison.report()
