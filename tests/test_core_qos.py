"""Unit tests for QoS classes, priority mapping, and QoSConfig."""

import pytest

from repro.core.qos import (
    Priority,
    QoS,
    QoSConfig,
    WEIGHTS_2_QOS,
    WEIGHTS_3_QOS,
    WEIGHTS_3_QOS_HEAVY,
    map_priority_to_qos,
    map_qos_to_priority,
)


def test_priority_to_qos_bijection():
    assert map_priority_to_qos(Priority.PC) == QoS.HIGH
    assert map_priority_to_qos(Priority.NC) == QoS.MEDIUM
    assert map_priority_to_qos(Priority.BE) == QoS.LOW


def test_qos_to_priority_is_inverse():
    for prio in Priority:
        assert map_qos_to_priority(map_priority_to_qos(prio)) == prio


def test_qos_short_names():
    assert QoS.HIGH.short_name == "QoS_h"
    assert QoS.MEDIUM.short_name == "QoS_m"
    assert QoS.LOW.short_name == "QoS_l"


def test_canonical_weight_vectors():
    assert WEIGHTS_3_QOS == (8, 4, 1)
    assert WEIGHTS_3_QOS_HEAVY == (50, 4, 1)
    assert WEIGHTS_2_QOS == (4, 1)


def test_default_config_three_levels():
    cfg = QoSConfig()
    assert cfg.num_levels == 3
    assert cfg.lowest == 2
    assert list(cfg.slo_levels) == [0, 1]


def test_guaranteed_share_sums_to_one():
    cfg = QoSConfig((8, 4, 1))
    total = sum(cfg.guaranteed_share(i) for i in range(3))
    assert total == pytest.approx(1.0)
    assert cfg.guaranteed_share(0) == pytest.approx(8 / 13)


def test_guaranteed_rate_scales_with_line_rate():
    cfg = QoSConfig((4, 1))
    assert cfg.guaranteed_rate_bps(0, 100e9) == pytest.approx(80e9)
    assert cfg.guaranteed_rate_bps(1, 100e9) == pytest.approx(20e9)


def test_config_rejects_single_level():
    with pytest.raises(ValueError):
        QoSConfig((1,))


def test_config_rejects_nonpositive_weights():
    with pytest.raises(ValueError):
        QoSConfig((8, 0, 1))
    with pytest.raises(ValueError):
        QoSConfig((8, -4, 1))


def test_config_rejects_increasing_weights():
    with pytest.raises(ValueError):
        QoSConfig((1, 4, 8))


def test_config_allows_many_levels():
    cfg = QoSConfig((32, 16, 8, 4, 2, 1))
    assert cfg.num_levels == 6
    assert cfg.lowest == 5
    assert list(cfg.slo_levels) == [0, 1, 2, 3, 4]
