"""The transport-neutral admission facade.

Lifting the Phase-2 pipeline behind :class:`AdmissionEngine` claims to
be behavior-preserving: the engine must make the exact decisions (and
coin flips) the raw :class:`ChannelRegistry` path makes under the same
seed, so the simulator's digests and the live runtime's coin streams
both flow through one implementation.  These tests pin that parity,
the clock-normalization seam (:func:`as_now_fn`), the ``enabled=False``
passthrough, and the quota-gate branches.
"""

import pytest

from repro.core.admission import AdmissionParams
from repro.core.channel import ChannelRegistry
from repro.core.clocks import FixedClock, as_now_fn
from repro.core.interface import AdmissionEngine
from repro.core.qos import QoSConfig, WEIGHTS_2_QOS
from repro.core.quota import QuotaReservation, QuotaServer
from repro.core.slo import SLO, SLOMap

US = 1_000
MS = 1_000_000


def two_level_slo_map() -> SLOMap:
    return SLOMap(
        {0: SLO(25 * MS, 90.0)},
        QoSConfig(weights=WEIGHTS_2_QOS),
    )


# ----------------------------------------------------------------------
# clock normalization
# ----------------------------------------------------------------------
class TestAsNowFn:
    def test_none_passes_through(self):
        assert as_now_fn(None) is None

    def test_clock_source_adapts_to_bound_method(self):
        clock = FixedClock(42)
        fn = as_now_fn(clock)
        assert fn() == 42
        clock.advance(8)
        assert fn() == 50

    def test_bare_callable_returned_as_is(self):
        def now() -> int:
            return 7

        assert as_now_fn(now) is now

    def test_non_clock_raises(self):
        with pytest.raises(TypeError):
            as_now_fn(3.14)

    def test_fixed_clock_rejects_backward_motion(self):
        clock = FixedClock()
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestSimClock:
    def test_tracks_simulator_now(self):
        class FakeSim:
            now = 1234

        from repro.obs import SimClock

        clock = SimClock(FakeSim())
        assert clock.now_ns() == 1234

    def test_obs_reexports_clock_sources(self):
        from repro.obs import ClockSource, FixedClock as ObsFixedClock

        assert isinstance(ObsFixedClock(0), ClockSource)


# ----------------------------------------------------------------------
# decision parity with the raw registry path
# ----------------------------------------------------------------------
class TestEngineParity:
    def test_same_coin_flips_as_channel_registry(self):
        """The engine and a raw registry under one seed must agree on
        every decision and every post-feedback p_admit — the digest-
        preservation claim in one assertion loop."""
        slo_map = two_level_slo_map()
        params = AdmissionParams()
        clock_a = FixedClock()
        clock_b = FixedClock()
        engine = AdmissionEngine(slo_map, params, seed=101, clock=clock_a)
        registry = ChannelRegistry(
            slo_map, params, seed=101, clock=as_now_fn(clock_b)
        )
        # A miss-heavy mixed sequence: drive p_admit down so the
        # probabilistic branch actually exercises the RNG on both sides.
        for step in range(400):
            outcome = engine.decide("dst", 0)
            decision = registry.controller("dst").on_rpc_issue_qos(0)
            assert outcome.qos_run == decision.qos_run
            assert outcome.downgraded == decision.downgraded
            rnl = 50 * MS if step % 3 else 10 * MS  # mostly misses
            engine.complete("dst", rnl, 1, outcome.qos_run)
            registry.controller("dst").on_rpc_completion(
                rnl, 1, decision.qos_run
            )
            clock_a.advance(5 * MS)
            clock_b.advance(5 * MS)
            assert engine.p_admit("dst", 0) == pytest.approx(
                registry.controller("dst").p_admit(0)
            )

    def test_misses_throttle_and_meets_recover(self):
        clock = FixedClock()
        engine = AdmissionEngine(two_level_slo_map(), seed=1, clock=clock)
        for _ in range(120):
            outcome = engine.decide("dst", 0)
            engine.complete("dst", 100 * MS, 1, outcome.qos_run)
        throttled = engine.p_admit("dst", 0)
        assert throttled < 0.5
        # Meets inside successive increment windows walk p back up.
        for _ in range(30):
            clock.advance(300 * MS)  # past the p90 increment window
            outcome = engine.decide("dst", 0)
            engine.complete("dst", 1 * MS, 1, outcome.qos_run)
        assert engine.p_admit("dst", 0) > throttled

    def test_scavenger_class_never_downgraded(self):
        engine = AdmissionEngine(two_level_slo_map(), seed=3)
        for _ in range(50):
            outcome = engine.decide("dst", 1)
            assert outcome.qos_run == 1
            assert not outcome.downgraded

    def test_per_destination_state_is_independent(self):
        engine = AdmissionEngine(two_level_slo_map(), seed=5)
        for _ in range(40):
            outcome = engine.decide("a", 0)
            engine.complete("a", 100 * MS, 1, outcome.qos_run)
        assert engine.p_admit("a", 0) < 1.0
        assert engine.p_admit("b", 0) == pytest.approx(1.0)

    def test_snapshot_covers_channels_and_levels(self):
        engine = AdmissionEngine(two_level_slo_map(), seed=5)
        engine.decide("a", 0)
        engine.decide("b", 0)
        snap = engine.snapshot()
        assert set(snap) == {"a", "b"}
        # Only SLO-carrying levels have admit state worth reporting.
        assert set(snap["a"]) == {0}


class TestDisabledEngine:
    def test_passthrough_never_downgrades(self):
        engine = AdmissionEngine(two_level_slo_map(), seed=9, enabled=False)
        for _ in range(100):
            outcome = engine.decide("dst", 0)
            assert outcome.qos_run == 0
            assert not outcome.downgraded
            engine.complete("dst", 500 * MS, 1, 0)  # feedback is a no-op
        assert engine.p_admit("dst", 0) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# the §5.2 quota gate
# ----------------------------------------------------------------------
class TestQuotaGate:
    def _engine_with_quota(self, clock: FixedClock) -> AdmissionEngine:
        quota = QuotaServer(
            as_now_fn(clock), total_rate_bps={0: 8e9}, work_conserving=True
        )
        quota.reserve(QuotaReservation(tenant="t1", qos=0, rate_bps=4e9))
        return AdmissionEngine(
            two_level_slo_map(),
            seed=11,
            clock=clock,
            quota_server=quota,
        )

    def test_reserved_traffic_bypasses_probabilistic_stage(self):
        clock = FixedClock()
        engine = self._engine_with_quota(clock)
        outcome = engine.decide("dst", 0, payload_bytes=1000, tenant="t1")
        assert outcome.quota == "reserved"
        assert outcome.qos_run == 0
        assert not outcome.downgraded

    def test_unreserved_tenant_rides_spare(self):
        clock = FixedClock()
        engine = self._engine_with_quota(clock)
        outcome = engine.decide("dst", 0, payload_bytes=1000, tenant="t2")
        assert outcome.quota == "spare"

    def test_exhausted_reservation_downgrades_on_denial(self):
        clock = FixedClock()
        quota = QuotaServer(
            as_now_fn(clock), total_rate_bps={0: 8e9}, work_conserving=False
        )
        quota.reserve(
            QuotaReservation(tenant="t1", qos=0, rate_bps=8.0, burst_bytes=1)
        )
        engine = AdmissionEngine(
            two_level_slo_map(), seed=11, clock=clock, quota_server=quota
        )
        engine.decide("dst", 0, payload_bytes=1, tenant="t1")
        outcome = engine.decide("dst", 0, payload_bytes=10_000, tenant="t1")
        assert outcome.quota == "denied"
        assert outcome.downgraded
        assert outcome.qos_run == 1  # lowest level

    def test_scavenger_requests_skip_the_gate(self):
        clock = FixedClock()
        engine = self._engine_with_quota(clock)
        outcome = engine.decide("dst", 1, payload_bytes=1000, tenant="t1")
        assert outcome.quota is None
