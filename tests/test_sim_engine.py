"""Unit tests for the discrete-event kernel.

Every kernel-contract test runs against each available backend (pure,
array, and compiled when built): the contract in
:mod:`repro.sim.engine`'s docstring is one semantics with three
implementations, so the same assertions must hold verbatim for all of
them.
"""

import pytest

from repro.sim.engine import (
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    Simulator,
    ns_from_ms,
    ns_from_sec,
    ns_from_us,
    us_from_ns,
)

from tests.backend_helpers import available_backends, sim_class


@pytest.fixture(params=available_backends())
def make_sim(request):
    """Factory building a simulator on one kernel backend."""
    return sim_class(request.param)


def test_unit_conversions():
    assert ns_from_us(1.5) == 1500
    assert ns_from_ms(2) == 2 * NS_PER_MS
    assert ns_from_sec(0.001) == NS_PER_MS
    assert us_from_ns(2500) == 2.5
    assert NS_PER_SEC == 1000 * NS_PER_MS == 10**6 * NS_PER_US


def test_default_construction_is_pure_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert type(Simulator()) is Simulator


def test_env_selects_backend(monkeypatch):
    from repro.sim.kernel import ArraySimulator

    monkeypatch.setenv("REPRO_BACKEND", "array")
    sim = Simulator()
    assert type(sim) is ArraySimulator
    # Explicit subclass construction bypasses the selection.
    monkeypatch.setenv("REPRO_BACKEND", "pure")
    assert type(ArraySimulator()) is ArraySimulator


def test_unknown_backend_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    with pytest.raises(ValueError, match="turbo"):
        Simulator()


def test_clock_starts_at_zero(make_sim):
    assert make_sim().now == 0


def test_events_fire_in_time_order(make_sim):
    sim = make_sim()
    fired = []
    sim.schedule(300, fired.append, "c")
    sim.schedule(100, fired.append, "a")
    sim.schedule(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_fifo_order(make_sim):
    sim = make_sim()
    fired = []
    for label in "abcde":
        sim.schedule(50, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time(make_sim):
    sim = make_sim()
    seen = []
    sim.schedule(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_negative_delay_rejected(make_sim):
    with pytest.raises(ValueError):
        make_sim().schedule(-1, lambda: None)


def test_schedule_at_absolute_time(make_sim):
    sim = make_sim()
    seen = []
    sim.schedule_at(500, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [500]


def test_schedule_at_past_time_reports_absolute_time_and_clock(make_sim):
    """Regression: the error used to leak the internal relative delay
    ("delay=-500ns"); callers passed an absolute timestamp and need to
    see it alongside the current clock to make sense of the error."""
    sim = make_sim()
    sim.schedule(1000, lambda: None)
    sim.run()
    assert sim.now == 1000
    with pytest.raises(ValueError) as excinfo:
        sim.schedule_at(400, lambda: None)
    message = str(excinfo.value)
    assert "400" in message  # the absolute time the caller passed
    assert "1000" in message  # the current clock
    assert "delay=" not in message


def test_schedule_at_now_is_allowed(make_sim):
    sim = make_sim()
    sim.schedule(100, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(100, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 100


def test_cancelled_event_does_not_fire(make_sim):
    sim = make_sim()
    fired = []
    handle = sim.schedule(10, fired.append, "x")
    sim.schedule(5, handle.cancel)
    sim.run()
    assert fired == []
    assert sim.events_processed == 1  # only the cancelling event


def test_run_until_stops_before_later_events(make_sim):
    sim = make_sim()
    fired = []
    sim.schedule(100, fired.append, "early")
    sim.schedule(1000, fired.append, "late")
    sim.run(until=500)
    assert fired == ["early"]
    assert sim.now == 500
    sim.run()
    assert fired == ["early", "late"]


def test_event_exactly_at_until_fires(make_sim):
    sim = make_sim()
    fired = []
    sim.schedule(500, fired.append, "at")
    sim.run(until=500)
    assert fired == ["at"]


def test_run_with_empty_queue_advances_to_until(make_sim):
    sim = make_sim()
    sim.run(until=999)
    assert sim.now == 999


def test_max_events_limits_execution(make_sim):
    sim = make_sim()
    fired = []
    for i in range(10):
        sim.schedule(i + 1, fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_run_loop(make_sim):
    sim = make_sim()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_events_scheduled_during_run_fire(make_sim):
    sim = make_sim()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_step_returns_false_when_idle(make_sim):
    sim = make_sim()
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_time_skips_cancelled(make_sim):
    sim = make_sim()
    h = sim.schedule(5, lambda: None)
    sim.schedule(10, lambda: None)
    h.cancel()
    assert sim.peek_time() == 10


def test_determinism_same_schedule_same_order(make_sim):
    def build():
        sim = make_sim()
        order = []
        for i in range(100):
            sim.schedule((i * 37) % 50, order.append, i)
        sim.run()
        return order

    assert build() == build()


# ----------------------------------------------------------------------
# Clock semantics on interrupted runs (stop / max_events / until)
# ----------------------------------------------------------------------
def test_stop_does_not_jump_clock_to_until(make_sim):
    """Regression: exiting via stop() once fell through to the
    advance-to-until epilogue, silently jumping the clock past the
    interruption point."""
    sim = make_sim()
    sim.schedule(100, sim.stop)
    sim.schedule(500, lambda: None)
    sim.run(until=1000)
    assert sim.now == 100
    # Pending events are untouched; a fresh run serves them and only
    # then covers the horizon.
    sim.run(until=1000)
    assert sim.now == 1000
    assert sim.events_processed == 2


def test_max_events_leaves_clock_at_last_event(make_sim):
    sim = make_sim()
    for t in (10, 20, 30, 40):
        sim.schedule(t, lambda: None)
    sim.run(until=1000, max_events=2)
    assert sim.now == 20
    assert sim.events_processed == 2
    sim.run(until=1000)
    assert sim.now == 1000
    assert sim.events_processed == 4


def test_stop_until_max_events_interplay(make_sim):
    """stop() wins over both budgets and leaves the clock at the
    stopping event; the remaining budget is not consumed."""
    sim = make_sim()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(20, sim.stop)
    sim.schedule(30, fired.append, 3)
    sim.run(until=1000, max_events=10)
    assert fired == [1]
    assert sim.now == 20
    sim.run(max_events=1)
    assert fired == [1, 3]
    assert sim.now == 30


def test_post_interleaves_fifo_with_schedule(make_sim):
    """post() shares the sequence counter with schedule(): same-time
    events fire in submission order regardless of which API queued
    them."""
    sim = make_sim()
    order = []
    sim.schedule(50, order.append, "a")
    sim.post(50, order.append, "b")
    sim.schedule(50, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.events_processed == 3


def test_post_rejects_negative_delay(make_sim):
    sim = make_sim()
    with pytest.raises(ValueError):
        sim.post(-1, print)


# ----------------------------------------------------------------------
# Lazy-cancellation characterization (kernel contract rule 2) — these
# pin the one documented semantics every backend must preserve.
# ----------------------------------------------------------------------
def test_cancelled_events_do_not_consume_max_events(make_sim):
    """A cancelled entry visited on the way to the budget is discarded
    for free: max_events counts fired events only."""
    sim = make_sim()
    fired = []
    handles = [sim.schedule(10 + i, fired.append, i) for i in range(5)]
    handles[0].cancel()
    handles[1].cancel()
    sim.run(max_events=2)
    assert fired == [2, 3]
    assert sim.events_processed == 2


def test_cancelled_event_does_not_advance_clock(make_sim):
    """Discarding a cancelled entry never moves the clock — even when
    the cancelled event was the only thing between now and later work."""
    sim = make_sim()
    h = sim.schedule(100, lambda: None)
    h.cancel()
    sim.run(max_events=1)
    # Budget exit with nothing fired: clock untouched.
    assert sim.now == 0
    assert sim.events_processed == 0


def test_cancelled_tie_preserves_fifo_of_survivors(make_sim):
    """Cancelling one of several same-timestamp events leaves the
    survivors' FIFO order intact."""
    sim = make_sim()
    order = []
    sim.schedule(50, order.append, "a")
    h = sim.schedule(50, order.append, "b")
    sim.post(50, order.append, "c")
    sim.schedule(50, order.append, "d")
    h.cancel()
    sim.run()
    assert order == ["a", "c", "d"]
    assert sim.events_processed == 3


def test_cancel_beyond_until_leaves_entry_until_visited(make_sim):
    """A cancelled event beyond the horizon is simply never reached;
    the run still covers the horizon and a later run discards it."""
    sim = make_sim()
    h = sim.schedule(2000, lambda: None)
    sim.schedule(100, lambda: None)
    h.cancel()
    sim.run(until=1000)
    assert sim.now == 1000
    assert sim.events_processed == 1
    sim.run()  # drains: only the cancelled entry remains, fires nothing
    assert sim.events_processed == 1
    assert sim.peek_time() is None


def test_cancel_mid_run_from_earlier_event(make_sim):
    """An event cancelled by an earlier event in the same run is
    discarded when reached, without firing."""
    sim = make_sim()
    fired = []
    victim = sim.schedule(200, fired.append, "victim")
    sim.schedule(100, victim.cancel)
    sim.schedule(300, fired.append, "after")
    sim.run()
    assert fired == ["after"]
    assert sim.events_processed == 2


def test_step_discards_cancelled_then_fires_next(make_sim):
    """step() applies the same discard-at-head rule as run()."""
    sim = make_sim()
    fired = []
    h = sim.schedule(5, fired.append, "cancelled")
    sim.schedule(10, fired.append, "live")
    h.cancel()
    assert sim.step() is True
    assert fired == ["live"]
    assert sim.now == 10
    assert sim.events_processed == 1


def test_step_returns_false_when_only_cancelled_remain(make_sim):
    sim = make_sim()
    h = sim.schedule(5, lambda: None)
    h.cancel()
    assert sim.step() is False
    assert sim.now == 0
    assert sim.events_processed == 0


def test_peek_time_drains_all_cancelled_heads(make_sim):
    sim = make_sim()
    handles = [sim.schedule(i, lambda: None) for i in range(1, 4)]
    for h in handles:
        h.cancel()
    assert sim.peek_time() is None
    sim.schedule(9, lambda: None)
    assert sim.peek_time() == 9


def test_cancel_after_fire_is_inert(make_sim):
    """Cancelling a handle whose event already fired must not disturb
    later events (slot/entry reuse regression guard)."""
    sim = make_sim()
    fired = []
    h = sim.schedule(10, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    h.cancel()  # too late; a no-op
    sim.schedule(10, fired.append, "y")
    sim.run()
    assert fired == ["x", "y"]
    assert sim.events_processed == 2


def test_exception_in_callback_still_counts_fired_events(make_sim):
    """events_processed is folded in on every exit path, including an
    exception escaping a callback (kernel contract rule 6)."""
    sim = make_sim()

    def boom():
        raise RuntimeError("handler failed")

    sim.schedule(1, lambda: None)
    sim.schedule(2, boom)
    sim.schedule(3, lambda: None)
    with pytest.raises(RuntimeError, match="handler failed"):
        sim.run()
    # The first event fired and is counted; the raising one is not.
    assert sim.events_processed == 1
    assert sim.now == 2  # clock had advanced to the raising event
    sim.run()  # the run can be resumed past the failure
    assert sim.events_processed == 2
