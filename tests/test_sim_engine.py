"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import (
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    Simulator,
    ns_from_ms,
    ns_from_sec,
    ns_from_us,
    us_from_ns,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_unit_conversions():
    assert ns_from_us(1.5) == 1500
    assert ns_from_ms(2) == 2 * NS_PER_MS
    assert ns_from_sec(0.001) == NS_PER_MS
    assert us_from_ns(2500) == 2.5
    assert NS_PER_SEC == 1000 * NS_PER_MS == 10**6 * NS_PER_US


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(300, fired.append, "c")
    sim.schedule(100, fired.append, "a")
    sim.schedule(200, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_fifo_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(50, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(500, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [500]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, "x")
    sim.schedule(5, handle.cancel)
    sim.run()
    assert fired == []
    assert sim.events_processed == 1  # only the cancelling event


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, "early")
    sim.schedule(1000, fired.append, "late")
    sim.run(until=500)
    assert fired == ["early"]
    assert sim.now == 500
    sim.run()
    assert fired == ["early", "late"]


def test_event_exactly_at_until_fires():
    sim = Simulator()
    fired = []
    sim.schedule(500, fired.append, "at")
    sim.run(until=500)
    assert fired == ["at"]


def test_run_with_empty_queue_advances_to_until():
    sim = Simulator()
    sim.run(until=999)
    assert sim.now == 999


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i + 1, fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_run_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1, fired.append, "a")
    sim.schedule(2, sim.stop)
    sim.schedule(3, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(5, lambda: None)
    sim.schedule(10, lambda: None)
    h.cancel()
    assert sim.peek_time() == 10


def test_determinism_same_schedule_same_order():
    def build():
        sim = Simulator()
        order = []
        for i in range(100):
            sim.schedule((i * 37) % 50, order.append, i)
        sim.run()
        return order

    assert build() == build()


# ----------------------------------------------------------------------
# Clock semantics on interrupted runs (stop / max_events / until)
# ----------------------------------------------------------------------
def test_stop_does_not_jump_clock_to_until():
    """Regression: exiting via stop() once fell through to the
    advance-to-until epilogue, silently jumping the clock past the
    interruption point."""
    sim = Simulator()
    sim.schedule(100, sim.stop)
    sim.schedule(500, lambda: None)
    sim.run(until=1000)
    assert sim.now == 100
    # Pending events are untouched; a fresh run serves them and only
    # then covers the horizon.
    sim.run(until=1000)
    assert sim.now == 1000
    assert sim.events_processed == 2


def test_max_events_leaves_clock_at_last_event():
    sim = Simulator()
    for t in (10, 20, 30, 40):
        sim.schedule(t, lambda: None)
    sim.run(until=1000, max_events=2)
    assert sim.now == 20
    assert sim.events_processed == 2
    sim.run(until=1000)
    assert sim.now == 1000
    assert sim.events_processed == 4


def test_stop_until_max_events_interplay():
    """stop() wins over both budgets and leaves the clock at the
    stopping event; the remaining budget is not consumed."""
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(20, sim.stop)
    sim.schedule(30, fired.append, 3)
    sim.run(until=1000, max_events=10)
    assert fired == [1]
    assert sim.now == 20
    sim.run(max_events=1)
    assert fired == [1, 3]
    assert sim.now == 30


def test_post_interleaves_fifo_with_schedule():
    """post() shares the sequence counter with schedule(): same-time
    events fire in submission order regardless of which API queued
    them."""
    sim = Simulator()
    order = []
    sim.schedule(50, order.append, "a")
    sim.post(50, order.append, "b")
    sim.schedule(50, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.events_processed == 3


def test_post_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.post(-1, print)
