"""Property-based conservation tests over every packet scheduler.

Invariant: packets are conserved — everything enqueued is either
dequeued, dropped, or still queued; byte accounting matches; and no
scheduler ever fabricates or loses a packet, under arbitrary
interleavings of enqueues and dequeues.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import Packet
from repro.net.queues import (
    DwrrScheduler,
    FifoScheduler,
    PFabricScheduler,
    StrictPriorityScheduler,
    WfqScheduler,
)

_BUFFER = 20_000

_MAKERS = {
    "fifo": lambda: FifoScheduler(_BUFFER, num_classes=3),
    "wfq": lambda: WfqScheduler((8, 4, 1), _BUFFER),
    "spq": lambda: StrictPriorityScheduler(3, _BUFFER),
    "dwrr": lambda: DwrrScheduler((8, 4, 1), _BUFFER),
    "pfabric": lambda: PFabricScheduler(_BUFFER, num_classes=3),
}

# An op is either an enqueue (qos, size, remaining) or a dequeue (None).
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=64, max_value=4200),
            st.integers(min_value=0, max_value=300),
        ),
        st.none(),
    ),
    max_size=200,
)


@pytest.mark.parametrize("kind", sorted(_MAKERS))
@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_scheduler_conserves_packets_and_bytes(kind, ops):
    sched = _MAKERS[kind]()
    accepted = []
    dropped = 0
    dequeued = []
    for op in ops:
        if op is None:
            pkt = sched.dequeue()
            if pkt is not None:
                dequeued.append(pkt)
        else:
            qos, size, remaining = op
            pkt = Packet(src=0, dst=1, size_bytes=size, qos=qos,
                         remaining_mtus=remaining)
            if sched.enqueue(pkt):
                accepted.append(pkt)
            else:
                dropped += 1
    # Drain completely.
    while True:
        pkt = sched.dequeue()
        if pkt is None:
            break
        dequeued.append(pkt)

    # pFabric may drop previously-accepted packets (evictions), so the
    # conservation identity is on uids, not on the accepted count alone.
    dequeued_uids = {p.uid for p in dequeued}
    accepted_uids = {p.uid for p in accepted}
    assert dequeued_uids <= accepted_uids  # nothing fabricated
    assert len(dequeued) == len(dequeued_uids)  # nothing duplicated
    if kind != "pfabric":
        assert dequeued_uids == accepted_uids  # nothing lost
    # Byte/queue accounting returns to zero after the drain.
    assert sched.bytes_queued == 0
    assert sched.packets_queued == 0
    # Stats add up: enqueued == dequeued + dropped (per the stats view).
    total_enq = sum(sched.stats.enqueued)
    total_deq = sum(sched.stats.dequeued)
    total_drop = sum(sched.stats.dropped)
    assert total_enq == len(accepted)
    assert total_deq == len(dequeued)
    # Conservation: accepted == dequeued + evicted-after-accept (only
    # pFabric evicts; its stats count evictions as drops too).
    assert len(accepted) == len(dequeued) + (total_drop - dropped)


@pytest.mark.parametrize("kind", sorted(_MAKERS))
@settings(max_examples=20, deadline=None)
@given(ops=_ops)
def test_scheduler_never_exceeds_buffer(kind, ops):
    sched = _MAKERS[kind]()
    for op in ops:
        if op is None:
            sched.dequeue()
        else:
            qos, size, remaining = op
            sched.enqueue(Packet(src=0, dst=1, size_bytes=size, qos=qos,
                                 remaining_mtus=remaining))
        assert 0 <= sched.bytes_queued <= _BUFFER
        assert sched.packets_queued >= 0
