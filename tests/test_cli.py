"""Tests for the command-line figure runner."""

from repro.cli import _EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in _EXPERIMENTS:
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_quick_run_fig08(capsys):
    assert main(["fig08", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Fig 8" in out
    assert "priority inversion" in out


def test_quick_run_fig09(capsys):
    assert main(["fig09", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "(8, 4, 1)" in out and "(50, 4, 1)" in out


def test_every_experiment_registered_with_description():
    for name, (desc, full, quick) in _EXPERIMENTS.items():
        assert desc
        assert callable(full) and callable(quick)


def test_registry_covers_every_figure_module():
    expected = {f"fig{n:02d}" for n in (8, 9, 10, 11, 12, 13, 14, 15, 16,
                                        17, 18, 19, 20, 21, 22, 23, 24)}
    expected |= {"fig28", "nqos"}
    assert set(_EXPERIMENTS) == expected
