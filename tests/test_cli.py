"""Tests for the command-line figure runner."""

from repro.cli import _EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in _EXPERIMENTS:
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_quick_run_fig08(capsys):
    assert main(["fig08", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Fig 8" in out
    assert "priority inversion" in out


def test_quick_run_fig09(capsys):
    assert main(["fig09", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "(8, 4, 1)" in out and "(50, 4, 1)" in out


def test_every_experiment_registered_with_description():
    for name, (desc, full, quick) in _EXPERIMENTS.items():
        assert desc
        assert callable(full) and callable(quick)


def test_registry_covers_every_figure_module():
    expected = {f"fig{n:02d}" for n in (8, 9, 10, 11, 12, 13, 14, 15, 16,
                                        17, 18, 19, 20, 21, 22, 23, 24)}
    expected |= {"fig28", "nqos"}
    assert set(_EXPERIMENTS) == expected


# ----------------------------------------------------------------------
# The report subcommand
# ----------------------------------------------------------------------
def _stored_run(tmp_path, **doc_kwargs):
    from repro.runner.store import ResultStore

    from tests.test_analysis_report import make_doc

    doc = make_doc(**doc_kwargs)
    root = tmp_path / "results"
    ResultStore(root).write(doc)
    return root, doc


def test_report_renders_text_html_and_summary(tmp_path, capsys):
    root, doc = _stored_run(tmp_path)
    summary_path = tmp_path / "summary.json"
    assert main([
        "report", doc["run_id"],
        "--results-dir", str(root),
        "--emit-summary", str(summary_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "run r1" in out and "p_admit convergence" in out

    html_path = root / doc["experiment"] / f"{doc['run_id']}.report.html"
    assert html_path.is_file()
    assert "<svg" in html_path.read_text()

    from repro.analysis.report import load_summary

    assert load_summary(summary_path)["run_id"] == doc["run_id"]


def test_report_no_html_skips_the_page(tmp_path, capsys):
    root, doc = _stored_run(tmp_path)
    assert main([
        "report", doc["run_id"], "--results-dir", str(root), "--no-html",
    ]) == 0
    capsys.readouterr()
    assert not (root / doc["experiment"] / f"{doc['run_id']}.report.html").exists()


def test_report_unknown_run_errors(tmp_path, capsys):
    assert main(["report", "nope", "--results-dir", str(tmp_path)]) == 2
    assert "no stored run" in capsys.readouterr().err


def _summary_file(tmp_path, name, **doc_kwargs):
    from repro.analysis.report import summarize, write_summary

    from tests.test_analysis_report import make_doc

    return str(write_summary(tmp_path / name, summarize(make_doc(**doc_kwargs))))


def test_report_diff_exit_codes(tmp_path, capsys):
    golden = _summary_file(tmp_path, "golden.json")
    same = _summary_file(tmp_path, "same.json", run_id="r2")
    assert main(["report", "--diff", golden, same]) == 0
    assert "no threshold breaches" in capsys.readouterr().out

    # An injected SLO-miss regression must fail the gate.
    regressed = _summary_file(tmp_path, "regressed.json", miss0=0.12)
    assert main(["report", "--diff", golden, regressed]) == 1
    assert "BREACH" in capsys.readouterr().out

    # ...unless the threshold is explicitly widened.
    assert main([
        "report", "--diff", golden, regressed, "--max-slo-miss-delta", "0.5",
    ]) == 0
    capsys.readouterr()


def test_report_diff_needs_two_runs(tmp_path, capsys):
    golden = _summary_file(tmp_path, "golden.json")
    assert main(["report", "--diff", golden]) == 2
    assert "exactly two" in capsys.readouterr().err
    assert main(["report"]) == 2
    assert "exactly one" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The live subcommand
# ----------------------------------------------------------------------
def test_live_rejects_invalid_workload(tmp_path, capsys):
    code = main(["live", "--duration", "-1", "--log-dir", str(tmp_path)])
    assert code == 2
    assert "duration" in capsys.readouterr().err


def test_live_short_run_exits_clean(tmp_path, capsys):
    code = main([
        "live", "--duration", "1", "--seed", "11", "--clients", "2",
        "--log-dir", str(tmp_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "server listening" in out
    assert "client 0:" in out and "client 1:" in out
    assert "live run ok" in out
    assert (tmp_path / "server.jsonl").exists()
    assert (tmp_path / "c0.jsonl").exists()
    # Telemetry off: no metrics sidecars, no endpoint line.
    assert not list(tmp_path.glob("metrics-*.jsonl"))
    assert "metrics endpoint" not in out


def test_live_telemetry_run_then_report_on_dir(tmp_path, capsys):
    log_dir = tmp_path / "logs"
    code = main([
        "live", "--duration", "1", "--seed", "11", "--clients", "2",
        "--telemetry", "--log-dir", str(log_dir),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "metrics endpoint on http://" in out
    assert (log_dir / "metrics-server.jsonl").exists()
    assert (log_dir / "metrics-c0.jsonl").exists()

    assert main(["report", str(log_dir), "--no-html"]) == 0
    report_out = capsys.readouterr().out
    assert "p_admit convergence" in report_out
    assert "digest n/a (live)" in report_out
