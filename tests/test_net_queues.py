"""Unit tests for all packet schedulers (FIFO, WFQ, SPQ, DWRR, pFabric)."""

import pytest

from repro.net.packet import Packet
from repro.net.queues import (
    DwrrScheduler,
    FifoScheduler,
    PFabricScheduler,
    StrictPriorityScheduler,
    WfqScheduler,
)


def pkt(qos=0, size=1000, remaining=0):
    return Packet(src=0, dst=1, size_bytes=size, qos=qos, remaining_mtus=remaining)


# ----------------------------------------------------------------------
# FIFO
# ----------------------------------------------------------------------
def test_fifo_order():
    q = FifoScheduler(buffer_bytes=10_000)
    pkts = [pkt(qos=i % 2) for i in range(5)]
    for p in pkts:
        assert q.enqueue(p)
    assert [q.dequeue() for _ in range(5)] == pkts
    assert q.dequeue() is None


def test_fifo_buffer_overflow_drops():
    q = FifoScheduler(buffer_bytes=2500)
    assert q.enqueue(pkt(size=1000))
    assert q.enqueue(pkt(size=1000))
    assert not q.enqueue(pkt(size=1000))
    assert q.stats.total_dropped == 1
    assert len(q) == 2


# ----------------------------------------------------------------------
# WFQ
# ----------------------------------------------------------------------
def test_wfq_rejects_bad_weights():
    with pytest.raises(ValueError):
        WfqScheduler((4, 0), 1000)


def test_wfq_single_class_is_fifo():
    q = WfqScheduler((1,), buffer_bytes=100_000)
    pkts = [pkt(qos=0) for _ in range(10)]
    for p in pkts:
        q.enqueue(p)
    assert [q.dequeue() for _ in range(10)] == pkts


def test_wfq_bandwidth_shares_match_weights():
    """With both classes persistently backlogged, dequeued bytes track
    the 4:1 weights — the g_i = phi_i/sum(phi) * r guarantee."""
    q = WfqScheduler((4, 1), buffer_bytes=10**9)
    for _ in range(500):
        q.enqueue(pkt(qos=0))
        q.enqueue(pkt(qos=1))
    counts = [0, 0]
    for _ in range(400):
        counts[q.dequeue().qos] += 1
    assert counts[0] / counts[1] == pytest.approx(4.0, rel=0.05)


def test_wfq_work_conserving():
    """An empty high class must not block the low class."""
    q = WfqScheduler((100, 1), buffer_bytes=10**9)
    low = [pkt(qos=1) for _ in range(5)]
    for p in low:
        q.enqueue(p)
    assert [q.dequeue() for _ in range(5)] == low


def test_wfq_within_class_fifo():
    q = WfqScheduler((4, 1), buffer_bytes=10**9)
    first = pkt(qos=0)
    second = pkt(qos=0)
    q.enqueue(first)
    q.enqueue(pkt(qos=1))
    q.enqueue(second)
    out = [q.dequeue() for _ in range(3)]
    assert out.index(first) < out.index(second)


def test_wfq_idle_reset_keeps_isolation():
    """After the system empties, virtual time resets and a fresh burst
    is scheduled identically to the first one."""
    q = WfqScheduler((4, 1), buffer_bytes=10**9)

    def burst_order():
        for _ in range(10):
            q.enqueue(pkt(qos=0))
            q.enqueue(pkt(qos=1))
        order = []
        while True:
            p = q.dequeue()
            if p is None:
                break
            order.append(p.qos)
        return order

    assert burst_order() == burst_order()


def test_wfq_unequal_packet_sizes():
    """Byte-based tags: a class sending 2x-size packets gets ~2x fewer
    packets through at equal weights."""
    q = WfqScheduler((1, 1), buffer_bytes=10**9)
    for _ in range(400):
        q.enqueue(pkt(qos=0, size=2000))
        q.enqueue(pkt(qos=1, size=1000))
    bytes_out = [0, 0]
    for _ in range(300):
        p = q.dequeue()
        bytes_out[p.qos] += p.size_bytes
    assert bytes_out[0] / bytes_out[1] == pytest.approx(1.0, rel=0.05)


def test_wfq_drop_on_full_buffer():
    q = WfqScheduler((4, 1), buffer_bytes=2000)
    assert q.enqueue(pkt(qos=0, size=1000))
    assert q.enqueue(pkt(qos=1, size=1000))
    assert not q.enqueue(pkt(qos=0, size=1000))
    assert q.stats.dropped[0] == 1


def test_wfq_class_backlog_tracking():
    q = WfqScheduler((4, 1), buffer_bytes=10**9)
    q.enqueue(pkt(qos=0, size=1234))
    q.enqueue(pkt(qos=1, size=111))
    assert q.class_backlog_bytes(0) == 1234
    assert q.class_backlog_bytes(1) == 111
    q.dequeue()
    q.dequeue()
    assert q.class_backlog_bytes(0) == 0
    assert q.class_backlog_bytes(1) == 0


def test_wfq_out_of_range_qos_rejected():
    q = WfqScheduler((4, 1), buffer_bytes=10**9)
    with pytest.raises(ValueError):
        q.enqueue(pkt(qos=5))


# ----------------------------------------------------------------------
# Strict priority
# ----------------------------------------------------------------------
def test_spq_always_serves_highest():
    q = StrictPriorityScheduler(3, buffer_bytes=10**9)
    q.enqueue(pkt(qos=2))
    q.enqueue(pkt(qos=1))
    q.enqueue(pkt(qos=0))
    assert [q.dequeue().qos for _ in range(3)] == [0, 1, 2]


def test_spq_starves_low_class():
    q = StrictPriorityScheduler(2, buffer_bytes=10**9)
    q.enqueue(pkt(qos=1))
    for _ in range(50):
        q.enqueue(pkt(qos=0))
        assert q.dequeue().qos == 0
    assert q.dequeue().qos == 1


# ----------------------------------------------------------------------
# DWRR
# ----------------------------------------------------------------------
def test_dwrr_shares_match_weights():
    q = DwrrScheduler((4, 1), buffer_bytes=10**9)
    for _ in range(500):
        q.enqueue(pkt(qos=0))
        q.enqueue(pkt(qos=1))
    counts = [0, 0]
    for _ in range(400):
        counts[q.dequeue().qos] += 1
    assert counts[0] / counts[1] == pytest.approx(4.0, rel=0.15)


def test_dwrr_work_conserving():
    q = DwrrScheduler((100, 1), buffer_bytes=10**9)
    q.enqueue(pkt(qos=1))
    assert q.dequeue().qos == 1
    assert q.dequeue() is None


def test_dwrr_drains_completely():
    q = DwrrScheduler((8, 4, 1), buffer_bytes=10**9)
    n = 90
    for i in range(n):
        q.enqueue(pkt(qos=i % 3))
    seen = 0
    while q.dequeue() is not None:
        seen += 1
    assert seen == n


# ----------------------------------------------------------------------
# pFabric
# ----------------------------------------------------------------------
def test_pfabric_serves_smallest_remaining_first():
    q = PFabricScheduler(buffer_bytes=10**9)
    q.enqueue(pkt(remaining=10))
    q.enqueue(pkt(remaining=1))
    q.enqueue(pkt(remaining=5))
    assert [q.dequeue().remaining_mtus for _ in range(3)] == [1, 5, 10]


def test_pfabric_fifo_among_equal_remaining():
    q = PFabricScheduler(buffer_bytes=10**9)
    a, b = pkt(remaining=3), pkt(remaining=3)
    q.enqueue(a)
    q.enqueue(b)
    assert q.dequeue() is a
    assert q.dequeue() is b


def test_pfabric_drops_largest_on_overflow():
    q = PFabricScheduler(buffer_bytes=2048)
    big = pkt(size=1024, remaining=100)
    small_1 = pkt(size=1024, remaining=1)
    q.enqueue(big)
    q.enqueue(small_1)
    # Full.  A smaller-remaining arrival evicts the largest-remaining.
    small_2 = pkt(size=1024, remaining=2)
    assert q.enqueue(small_2)
    out = [q.dequeue(), q.dequeue()]
    assert big not in out
    assert q.dequeue() is None


def test_pfabric_rejects_arrival_larger_than_queued():
    q = PFabricScheduler(buffer_bytes=2048)
    q.enqueue(pkt(size=1024, remaining=1))
    q.enqueue(pkt(size=1024, remaining=2))
    assert not q.enqueue(pkt(size=1024, remaining=50))
    assert len(q) == 2


def test_pfabric_byte_accounting_after_evictions():
    q = PFabricScheduler(buffer_bytes=4096)
    for r in (9, 8, 7, 6):
        q.enqueue(pkt(size=1024, remaining=r))
    q.enqueue(pkt(size=1024, remaining=1))  # evicts remaining=9
    total = 0
    while True:
        p = q.dequeue()
        if p is None:
            break
        total += p.size_bytes
    assert total == 4096
    assert q.bytes_queued == 0


# ----------------------------------------------------------------------
# Work-conservation / accounting regressions
# ----------------------------------------------------------------------
def test_dwrr_fractional_weights_single_class_work_conserving():
    """Regression: dequeue once capped its scan at 2*len(active)+1
    visits.  With weights (0.5, 0.3, 0.2) the qos-2 quantum is 819.2B,
    so a 4096B packet needs 5 grants and the bounded loop returned None
    with backlog — the port went idle forever over a queued packet."""
    q = DwrrScheduler((0.5, 0.3, 0.2), buffer_bytes=10**6)
    p = pkt(qos=2, size=4096)
    assert q.enqueue(p)
    assert q.dequeue() is p
    assert q.packets_queued == 0
    assert q.dequeue() is None


def test_dwrr_fractional_weight_shares():
    """Fractional weights must both stay work conserving and still
    deliver the 0.5/0.3/0.2 byte shares under persistent backlog."""
    q = DwrrScheduler((0.5, 0.3, 0.2), buffer_bytes=10**9)
    for _ in range(600):
        for qos in range(3):
            assert q.enqueue(pkt(qos=qos, size=1000))
    served = {0: 0, 1: 0, 2: 0}
    for _ in range(900):
        p = q.dequeue()
        assert p is not None, "DWRR returned None with backlog queued"
        served[p.qos] += p.size_bytes
    total = sum(served.values())
    assert abs(served[0] / total - 0.5) < 0.05
    assert abs(served[1] / total - 0.3) < 0.05
    assert abs(served[2] / total - 0.2) < 0.05


def test_dwrr_drains_after_idle_and_refill():
    q = DwrrScheduler((0.5, 0.3, 0.2), buffer_bytes=10**6)
    for _ in range(3):
        pkts = [pkt(qos=i % 3, size=4096) for i in range(6)]
        for p in pkts:
            assert q.enqueue(p)
        out = []
        while True:
            p = q.dequeue()
            if p is None:
                break
            out.append(p)
        assert sorted(p.uid for p in out) == sorted(p.uid for p in pkts)
        assert q.packets_queued == 0 and q.bytes_queued == 0


def test_wfq_drain_refill_across_virtual_time_resets():
    """Drain to empty (virtual-time reset), refill with an identical
    pattern so fresh finish tags coincide with pre-reset ones.  Stale
    head-heap detection must key on packet identity, not float tag
    equality — every cycle must serve exactly its own packets, in
    per-class FIFO order."""
    q = WfqScheduler((8, 4, 1), buffer_bytes=10**9)
    for _ in range(5):
        pkts = [pkt(qos=i % 3, size=1500) for i in range(9)]
        for p in pkts:
            assert q.enqueue(p)
        out = [q.dequeue() for _ in range(9)]
        assert q.dequeue() is None
        assert q.packets_queued == 0 and q.bytes_queued == 0
        assert sorted(p.uid for p in out) == sorted(p.uid for p in pkts)
        for qos in range(3):
            assert [p.uid for p in out if p.qos == qos] == [
                p.uid for p in pkts if p.qos == qos
            ]


def test_fifo_per_class_byte_stats():
    """Regression: the shared FIFO once recorded the queue *total* as
    every class's occupancy figure, so max_bytes_per_class tracked the
    whole queue instead of that class's bytes."""
    q = FifoScheduler(buffer_bytes=10**6, num_classes=2)
    assert q.enqueue(pkt(qos=0, size=1000))
    assert q.enqueue(pkt(qos=1, size=500))
    assert q.enqueue(pkt(qos=0, size=1000))
    assert q.class_backlog_bytes(0) == 2000
    assert q.class_backlog_bytes(1) == 500
    assert q.stats.max_bytes_per_class == [2000, 500]
    q.dequeue()
    q.dequeue()
    assert q.class_backlog_bytes(0) == 1000
    assert q.class_backlog_bytes(1) == 0
