"""The sim-vs-live convergence gate and its simulator reference.

Three layers under test: the forward-fill that turns raw AIMD
adjustment tracks into detector-ready grids, the settled-value
comparison (:func:`compare_tracks`) the CI job gates on, and the
simulator reference itself — which must be deterministic (same
workload, same tracks, bit-for-bit) and must actually *throttle* under
the demo's engineered overload, or the gate would pass vacuously.
"""

import pytest

from repro.analysis.convergence import per_qos_convergence
from repro.live.convergence import (
    CompareResult,
    compare_tracks,
    fill_track,
    fill_tracks,
    tracks_from_logs,
)
from repro.live.events import EventLog
from repro.live.simref import run_sim_reference
from repro.live.workload import LiveWorkload
from repro.obs.trace import AdmissionEvent

SECOND = 1_000_000_000


class TestFillTrack:
    def test_empty_track_holds_initial_value(self):
        filled = fill_track([], SECOND, points=5)
        assert filled == [
            (0, 1.0), (SECOND // 4, 1.0), (SECOND // 2, 1.0),
            (3 * SECOND // 4, 1.0), (SECOND, 1.0),
        ]

    def test_forward_fill_holds_last_adjustment(self):
        track = [(SECOND // 2, 0.4)]
        filled = fill_track(track, SECOND, points=5)
        assert [v for _, v in filled] == [1.0, 1.0, 0.4, 0.4, 0.4]

    def test_unsorted_input_is_ordered_first(self):
        track = [(750_000_000, 0.2), (250_000_000, 0.8)]
        filled = fill_track(track, SECOND, points=5)
        assert [v for _, v in filled] == [1.0, 0.8, 0.8, 0.2, 0.2]

    def test_needs_two_grid_points(self):
        with pytest.raises(ValueError):
            fill_track([], SECOND, points=1)

    def test_fill_tracks_preserves_keys(self):
        filled = fill_tracks({"c0->srv/qos0": [(0, 0.5)]}, SECOND, points=3)
        assert set(filled) == {"c0->srv/qos0"}
        assert len(filled["c0->srv/qos0"]) == 3


def settled_tracks(value: float, channels: int = 2, qos: int = 0):
    """Raw tracks that settle immediately at ``value`` on every channel."""
    return {
        f"c{i}->srv/qos{qos}": [
            (t * SECOND // 10, value) for t in range(1, 10)
        ]
        for i in range(channels)
    }


class TestCompareTracks:
    def test_agreeing_sides_pass(self):
        result = compare_tracks(
            settled_tracks(0.4), settled_tracks(0.45), 1 * SECOND
        )
        assert isinstance(result, CompareResult)
        assert result.ok
        (delta,) = result.deltas
        assert delta.qos == 0
        assert delta.delta == pytest.approx(0.05, abs=1e-9)
        assert "ok" in delta.render()

    def test_disagreement_beyond_tolerance_fails(self):
        result = compare_tracks(
            settled_tracks(0.9), settled_tracks(0.3), 1 * SECOND
        )
        assert not result.ok
        assert "FAIL" in result.report()

    def test_missing_live_qos_is_a_problem(self):
        result = compare_tracks(
            settled_tracks(0.4, qos=0), settled_tracks(0.4, qos=2), 1 * SECOND
        )
        assert not result.ok
        assert any("no qos0" in p for p in result.problems)
        assert any("unexpected qos2" in p for p in result.problems)

    def test_empty_sides_are_problems(self):
        result = compare_tracks({}, {}, 1 * SECOND)
        assert not result.ok
        assert len(result.problems) == 2

    def test_report_carries_verdict_line(self):
        ok = compare_tracks(settled_tracks(0.5), settled_tracks(0.5), SECOND)
        assert ok.report().splitlines()[-1].strip() == "verdict: OK"


class TestTracksFromLogs:
    def test_reads_and_merges_client_logs(self, tmp_path):
        paths = []
        for i in range(2):
            path = tmp_path / f"c{i}.jsonl"
            with EventLog(path) as log:
                log.admission(
                    AdmissionEvent(
                        time_ns=100 + i,
                        channel=f"c{i}->srv",
                        qos=0,
                        p_admit=0.5,
                        kind="decrease",
                    )
                )
            paths.append(path)
        tracks = tracks_from_logs(paths)
        assert set(tracks) == {"c0->srv/qos0", "c1->srv/qos0"}


class TestSimReference:
    @pytest.fixture(scope="class")
    def workload(self):
        return LiveWorkload(duration_s=8.0)

    @pytest.fixture(scope="class")
    def tracks(self, workload):
        return run_sim_reference(workload)

    def test_deterministic_across_runs(self, workload, tracks):
        assert run_sim_reference(workload) == tracks

    def test_one_track_per_client_on_the_slo_class(self, workload, tracks):
        slo_keys = {k for k in tracks if k.endswith("/qos0")}
        assert slo_keys == {
            f"{workload.client_id(i)}->srv/qos0"
            for i in range(workload.clients)
        }

    def test_overload_throttles_the_slo_class(self, workload, tracks):
        """At 1.8x engineered overload the reference must settle the
        admit probability well below 1.0 — and off the 0.01 floor, or
        the demo would be showing collapse rather than control."""
        verdicts = per_qos_convergence(
            fill_tracks(tracks, workload.duration_ns), tolerance=0.25
        )
        settled = verdicts[0].settled_value
        assert 0.05 < settled < 0.9

    def test_gate_passes_against_itself(self, workload, tracks):
        result = compare_tracks(tracks, tracks, workload.duration_ns)
        assert result.ok
        assert all(d.delta == 0.0 for d in result.deltas)

    def test_horizon_scaling_changes_only_duration(self, workload):
        scaled = workload.scaled(2.0)
        assert scaled.duration_ns == 2 * SECOND
        assert scaled.seed == workload.seed
        assert scaled.queue_limit == workload.queue_limit
