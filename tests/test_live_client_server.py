"""Fault handling in the live client/server pair, in-process.

One event loop hosts both ends (real asyncio TCP on loopback, no
subprocesses), which makes fault injection deterministic: the server's
``on_request`` hook resets or swallows chosen requests, and the client
must recover exactly as specified — reconnect-and-retry on connection
loss, timeout-and-backoff on silence, a definitive non-retried failure
on queue rejection, and a terminated span when the deadline is
exhausted.  Wall-clock assertions are *bounded* (at least the policy's
floors, below a generous ceiling), never exact — loaded CI machines
stretch sleeps but cannot shrink them.
"""

import asyncio
import random

import pytest

from repro.core.qos import QoSConfig, WEIGHTS_2_QOS
from repro.core.slo import SLO, SLOMap
from repro.live.client import AdmissionClient, RetryPolicy
from repro.live.clock import WallClock
from repro.live.events import EventLog, read_events
from repro.live.server import FAULT_DROP, FAULT_RESET, LiveServer

MS = 1_000_000

#: Fast-failing policy so fault tests stay well under a second each.
FAST_RETRY = RetryPolicy(
    max_attempts=3,
    deadline_ns=2_000 * MS,
    attempt_timeout_ns=60 * MS,
    backoff_base_ns=20 * MS,
    backoff_cap_ns=80 * MS,
    jitter=0.25,
)


def slo_map() -> SLOMap:
    return SLOMap({0: SLO(25 * MS, 90.0)}, QoSConfig(weights=WEIGHTS_2_QOS))


def run_stack(
    tmp_path,
    scenario,
    *,
    on_request=None,
    service_ns=1 * MS,
    queue_limit=16,
    retry=FAST_RETRY,
):
    """Start a server + client on loopback and run one scenario coro."""

    async def _main():
        clock = WallClock()
        with EventLog(tmp_path / "server.jsonl") as server_log, EventLog(
            tmp_path / "client.jsonl"
        ) as client_log:
            server = LiveServer(
                clock,
                server_log,
                service_ns_per_mtu=service_ns,
                queue_limit=queue_limit,
                on_request=on_request,
            )
            port = await server.start()
            client = AdmissionClient(
                "c0",
                "127.0.0.1",
                port,
                slo_map(),
                seed=1,
                clock=clock,
                log=client_log,
                retry=retry,
            )
            try:
                return await scenario(server, client, clock)
            finally:
                await client.aclose()
                await server.stop()

    return asyncio.run(_main())


class TestHappyPath:
    def test_single_call_completes_first_attempt(self, tmp_path):
        async def scenario(server, client, clock):
            result = await client.call(0, payload_bytes=4096)
            return result, server.served

        result, served = run_stack(tmp_path, scenario)
        assert result.ok
        assert result.status == "ok"
        assert result.attempts == 1
        assert result.rnl_ns is not None and result.rnl_ns > 0
        assert served == 1
        spans = [
            r for r in read_events(tmp_path / "client.jsonl")
            if r["type"] == "rpc"
        ]
        assert len(spans) == 1
        assert spans[0]["terminated"] is False

    def test_strict_priority_favors_slo_class(self, tmp_path):
        """With the server busy, a queued SLO request is served before
        earlier-queued scavenger requests."""

        async def scenario(server, client, clock):
            first = asyncio.create_task(client.call(0, payload_bytes=4096))
            await asyncio.sleep(0.01)  # first request now in service
            scav = asyncio.create_task(client.call(1, payload_bytes=4096))
            await asyncio.sleep(0.005)
            slo = asyncio.create_task(client.call(0, payload_bytes=4096))
            await asyncio.gather(first, scav, slo)
            spans = [
                r for r in read_events(tmp_path / "server.jsonl")
                if r["type"] == "queue"
            ]
            return spans

        # Patient retries: every call waits out the backlog in one
        # attempt, so the three calls map to exactly three queue spans.
        spans = run_stack(
            tmp_path,
            scenario,
            service_ns=40 * MS,
            retry=RetryPolicy(
                max_attempts=1, deadline_ns=2_000 * MS,
                attempt_timeout_ns=1_000 * MS,
            ),
        )
        assert len(spans) == 3
        scav_span = next(s for s in spans if s["qos"] == 1)
        slo_span = max(
            (s for s in spans if s["qos"] == 0),
            key=lambda s: s["enqueued_ns"],
        )
        # FIFO inverted in favor of the SLO class: the scavenger request
        # entered the queue first but was served last.
        assert slo_span["enqueued_ns"] > scav_span["enqueued_ns"]
        assert slo_span["dequeued_ns"] < scav_span["dequeued_ns"]


class TestConnectionReset:
    def test_reset_reconnects_and_retries(self, tmp_path):
        dropped = []

        def reset_first(request):
            if not dropped:
                dropped.append(request.request_id)
                return FAULT_RESET
            return None

        async def scenario(server, client, clock):
            return await client.call(0, payload_bytes=4096)

        result = run_stack(tmp_path, scenario, on_request=reset_first)
        assert result.ok
        assert result.attempts == 2
        conn_events = [
            r["event"]
            for r in read_events(tmp_path / "client.jsonl")
            if r["type"] == "conn"
        ]
        # One dial, a reset, then the reconnect dial.
        assert conn_events.count("connect") == 2
        assert "reset" in conn_events


class TestServerStall:
    def test_drop_times_out_then_backs_off_and_retries(self, tmp_path):
        dropped = []

        def drop_first(request):
            if not dropped:
                dropped.append(request.request_id)
                return FAULT_DROP
            return None

        async def scenario(server, client, clock):
            start_ns = clock.now_ns()
            result = await client.call(0, payload_bytes=4096)
            return result, clock.now_ns() - start_ns

        result, elapsed_ns = run_stack(tmp_path, scenario, on_request=drop_first)
        assert result.ok
        assert result.attempts == 2
        retries = [
            r for r in read_events(tmp_path / "client.jsonl")
            if r["type"] == "retry"
        ]
        assert len(retries) == 1
        retry = retries[0]
        assert retry["reason"] == "timeout"
        # Jittered exponential backoff from the seeded stream: attempt 1
        # delays base x [1 - jitter, 1 + jitter].
        low = FAST_RETRY.backoff_base_ns * (1 - FAST_RETRY.jitter)
        high = FAST_RETRY.backoff_base_ns * (1 + FAST_RETRY.jitter)
        assert low <= retry["delay_ns"] <= high
        # Bounded, not exact: at least one attempt timeout plus the
        # logged backoff elapsed; well under the deadline ceiling.
        assert elapsed_ns >= FAST_RETRY.attempt_timeout_ns + retry["delay_ns"]
        assert elapsed_ns < FAST_RETRY.deadline_ns

    def test_persistent_stall_exhausts_deadline(self, tmp_path):
        async def scenario(server, client, clock):
            result = await client.call(0, payload_bytes=4096)
            return result, client.failures

        result, failures = run_stack(
            tmp_path, scenario, on_request=lambda request: FAULT_DROP
        )
        assert not result.ok
        assert result.status == "timeout"
        assert result.attempts == FAST_RETRY.max_attempts
        assert failures == 1
        spans = [
            r for r in read_events(tmp_path / "client.jsonl")
            if r["type"] == "rpc"
        ]
        assert spans[-1]["terminated"] is True
        assert spans[-1]["slo_met"] is False


class TestRejection:
    def test_full_queue_rejects_immediately_without_retry(self, tmp_path):
        async def scenario(server, client, clock):
            calls = [
                asyncio.create_task(client.call(0, payload_bytes=4096))
                for _ in range(4)
            ]
            results = await asyncio.gather(*calls)
            return results, server.rejected, client.engine.p_admit("srv", 0)

        results, server_rejected, p_admit = run_stack(
            tmp_path,
            scenario,
            service_ns=50 * MS,
            queue_limit=1,
            retry=RetryPolicy(
                max_attempts=3,
                deadline_ns=2_000 * MS,
                attempt_timeout_ns=400 * MS,
                backoff_base_ns=20 * MS,
            ),
        )
        rejected = [r for r in results if r.status == "rejected"]
        assert rejected and server_rejected == len(rejected)
        for result in rejected:
            assert not result.ok
            # A definitive reject is not retried.
            assert result.attempts == 1
        assert all(r.ok for r in results if r.status == "ok")
        # The reject fed the SLO budget back as a miss: AIMD throttled.
        assert p_admit < 1.0


class TestShutdown:
    def test_double_shutdown_is_idempotent(self, tmp_path):
        async def scenario(server, client, clock):
            result = await client.call(0, payload_bytes=4096)
            await client.aclose()
            await client.aclose()
            await server.stop()
            await server.stop()
            return result

        # run_stack's finally closes both a third time — also covered.
        assert run_stack(tmp_path, scenario).ok

    def test_close_during_dial_does_not_resurrect_connection(self, tmp_path):
        """Close-vs-dial race: a dial already past aclose's ``_closed``
        check must not re-establish the writer and reader task after the
        teardown ran — that leaks a socket and a task on a closed
        client.  aclose now tears down under ``_conn_lock``, so it waits
        for the in-flight dial and then drops whatever it produced."""

        async def scenario(server, client, clock):
            dial = asyncio.create_task(client._ensure_conn())
            await asyncio.sleep(0)  # dial now holds the lock, mid-connect
            assert client._conn_lock.locked()
            await client.aclose()
            try:
                await dial
            except ConnectionError:
                pass  # closed before the dial got through: equally fine
            return client._writer, client._reader_task

        writer, reader_task = run_stack(tmp_path, scenario)
        assert writer is None
        assert reader_task is None

    def test_call_after_close_fails_cleanly(self, tmp_path):
        async def scenario(server, client, clock):
            await client.aclose()
            return await client.call(0, payload_bytes=4096)

        result = run_stack(
            tmp_path,
            scenario,
            retry=RetryPolicy(max_attempts=1, deadline_ns=200 * MS),
        )
        assert not result.ok
        assert result.status == "error"


class TestBackoffSchedule:
    def test_exponential_doubling_capped_with_jitter_bounds(self):
        policy = RetryPolicy(
            backoff_base_ns=10 * MS, backoff_cap_ns=70 * MS, jitter=0.25
        )
        rng = random.Random(42)
        for attempt in range(1, 8):
            raw = min(policy.backoff_cap_ns, policy.backoff_base_ns * 2 ** (attempt - 1))
            delay = policy.backoff_ns(attempt, rng)
            assert raw * (1 - policy.jitter) <= delay <= raw * (1 + policy.jitter)

    def test_seeded_stream_is_reproducible(self):
        policy = RetryPolicy()
        a = [policy.backoff_ns(n, random.Random(7)) for n in range(1, 5)]
        b = [policy.backoff_ns(n, random.Random(7)) for n in range(1, 5)]
        assert a == b

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
