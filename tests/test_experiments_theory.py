"""Tests for the theory-figure drivers (Figs 8, 9, 10)."""

import pytest

from repro.experiments import fig08, fig09, fig10


def test_fig8_curve_shape():
    result = fig08.run()
    assert result.inversion_share == pytest.approx(0.8)
    # QoS_h delay-free region, then growth, then the flat saturation.
    by_share = {round(x, 2): (dh, dl) for x, dh, dl in result.rows}
    assert by_share[0.25][0] == 0.0
    assert by_share[1.0][0] == pytest.approx(0.8 * (1 - 1 / 1.2))
    assert by_share[0.0][1] == pytest.approx(0.8 * (1 - 1 / 1.2))
    assert by_share[1.0][1] == 0.0
    assert "priority inversion" in result.table()


def test_fig9_inversion_moves_right_with_weight():
    light, heavy = fig09.run_both_panels()
    assert light.weights == (8, 4, 1)
    assert heavy.weights == (50, 4, 1)
    # Lemma-1 boundaries with the 2:1 m:l split.
    assert light.inversion_share() == pytest.approx(8 / 14, abs=0.06)
    assert heavy.inversion_share() == pytest.approx(50 / 56, abs=0.06)


def test_fig9_delays_nonnegative_and_bounded():
    result = fig09.run(shares=[0.1, 0.5, 0.9])
    for x, dh, dm, dl in result.rows:
        for d in (dh, dm, dl):
            assert 0.0 <= d <= 0.8


def test_fig10_sim_tracks_theory():
    result = fig10.run(shares=[0.1, 0.4, 0.7, 0.85, 0.95], period_us=500.0)
    assert result.max_abs_error_h() < 0.01
    for x, sim_h, sim_l, thy_h, thy_l in result.rows:
        assert sim_h == pytest.approx(thy_h, abs=0.01)
        # QoS_l may sit slightly above the fluid value (packetization),
        # exactly as the paper reports for its own simulator.
        assert sim_l == pytest.approx(thy_l, abs=0.02)
        assert sim_l >= thy_l - 0.01


def test_fig10_detects_priority_inversion_point():
    result = fig10.run(shares=[0.75, 0.85], period_us=500.0)
    rows = {round(x, 2): (sh, sl) for x, sh, sl, _, __ in result.rows}
    assert rows[0.75][0] < rows[0.75][1]  # no inversion below phi/(phi+1)
    assert rows[0.85][0] > rows[0.85][1]  # inversion beyond it
