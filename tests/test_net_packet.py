"""Unit tests for packets and segmentation arithmetic."""

import pytest

from repro.net.packet import (
    CONTROL_BYTES,
    HEADER_BYTES,
    MTU_BYTES,
    Packet,
    PacketKind,
    data_packet,
    mtus_for_bytes,
)


def test_mtus_for_bytes_rounding():
    assert mtus_for_bytes(1) == 1
    assert mtus_for_bytes(MTU_BYTES) == 1
    assert mtus_for_bytes(MTU_BYTES + 1) == 2
    assert mtus_for_bytes(32 * 1024) == 8
    assert mtus_for_bytes(64 * 1024) == 16


def test_mtus_for_bytes_rejects_nonpositive():
    with pytest.raises(ValueError):
        mtus_for_bytes(0)
    with pytest.raises(ValueError):
        mtus_for_bytes(-5)


def test_data_packet_includes_header_overhead():
    pkt = data_packet(src=1, dst=2, payload_bytes=MTU_BYTES, qos=0,
                      flow_id=3, seq=4, msg_id=5)
    assert pkt.size_bytes == MTU_BYTES + HEADER_BYTES
    assert pkt.kind == PacketKind.DATA
    assert (pkt.src, pkt.dst, pkt.qos) == (1, 2, 0)
    assert (pkt.flow_id, pkt.seq, pkt.msg_id) == (3, 4, 5)


def test_packet_uids_unique():
    uids = {Packet(0, 1, 64).uid for _ in range(100)}
    assert len(uids) == 100


def test_packet_defaults():
    pkt = Packet(0, 1, CONTROL_BYTES, kind=PacketKind.ACK)
    assert pkt.deadline_ns is None
    assert pkt.remaining_mtus == 0
    assert pkt.sent_time_ns == 0


def test_data_packet_carries_srpt_and_deadline_hints():
    pkt = data_packet(src=0, dst=1, payload_bytes=100, qos=1, flow_id=1,
                      seq=0, msg_id=9, remaining_mtus=7, deadline_ns=12345)
    assert pkt.remaining_mtus == 7
    assert pkt.deadline_ns == 12345
