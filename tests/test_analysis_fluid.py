"""Unit + property tests for the fluid GPS worst-case delay simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.delay_bounds import TrafficModel, delay_h, delay_l
from repro.analysis.fluid import _gps_rates, simulate_fluid, sweep_three_qos


# ----------------------------------------------------------------------
# GPS instantaneous rate allocation
# ----------------------------------------------------------------------
def test_gps_backlogged_classes_split_by_weight():
    rates = _gps_rates([0.0, 0.0], [1.0, 1.0], [4.0, 1.0])
    assert rates[0] == pytest.approx(0.8)
    assert rates[1] == pytest.approx(0.2)


def test_gps_unbacklogged_class_capped_at_arrival():
    rates = _gps_rates([0.1, 2.0], [0.0, 1.0], [4.0, 1.0])
    assert rates[0] == pytest.approx(0.1)
    assert rates[1] == pytest.approx(0.9)  # work conservation


def test_gps_idle_class_gets_nothing():
    rates = _gps_rates([0.0, 0.5], [0.0, 0.0], [4.0, 1.0])
    assert rates[0] == 0.0
    assert rates[1] == pytest.approx(0.5)


def test_gps_never_exceeds_capacity():
    rates = _gps_rates([3.0, 3.0, 3.0], [1.0, 1.0, 1.0], [8.0, 4.0, 1.0])
    assert sum(rates) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Fluid simulation vs closed form (the Fig-10 cross-check in fluid form)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("x", [0.05, 0.2, 0.4, 0.6, 0.7, 0.8, 0.85, 0.95])
def test_fluid_matches_closed_form_two_qos(x):
    model = TrafficModel(mu=0.8, rho=1.2, phi=4.0)
    result = simulate_fluid([x, 1 - x], [4.0, 1.0], mu=0.8, rho=1.2)
    assert result.delays[0] == pytest.approx(delay_h(x, model), abs=2e-3)
    assert result.delays[1] == pytest.approx(delay_l(x, model), abs=2e-3)


@settings(max_examples=60, deadline=None)
@given(
    x=st.floats(min_value=0.02, max_value=0.98),
    mu=st.floats(min_value=0.3, max_value=0.9),
    rho_over=st.floats(min_value=0.1, max_value=2.5),  # includes rho > phi+1
    phi=st.floats(min_value=0.6, max_value=20.0),
)
def test_fluid_matches_closed_form_random_params(x, mu, rho_over, phi):
    rho = 1.0 + rho_over
    model = TrafficModel(mu=mu, rho=rho, phi=phi)
    result = simulate_fluid([x, 1 - x], [phi, 1.0], mu=mu, rho=rho)
    assert result.delays[0] == pytest.approx(delay_h(x, model), abs=5e-3)
    assert result.delays[1] == pytest.approx(delay_l(x, model), abs=5e-3)


def test_fluid_conservation():
    """All arrived fluid is served by the end of the period."""
    result = simulate_fluid([0.5, 0.3, 0.2], [8, 4, 1], mu=0.8, rho=1.4)
    for arr, srv in zip(result.arrival_curves, result.service_curves):
        assert arr[-1][1] == pytest.approx(srv[-1][1], abs=1e-9)


def test_fluid_underload_no_delay():
    """With every class under its guaranteed rate, no delay anywhere."""
    result = simulate_fluid([0.6, 0.3, 0.1], [8, 4, 1], mu=0.4, rho=0.9)
    for d in result.delays:
        assert d == pytest.approx(0.0, abs=1e-9)


def test_fluid_input_validation():
    with pytest.raises(ValueError):
        simulate_fluid([0.5, 0.6], [4, 1])  # shares don't sum to 1
    with pytest.raises(ValueError):
        simulate_fluid([0.5, 0.5], [4])  # length mismatch
    with pytest.raises(ValueError):
        simulate_fluid([0.5, 0.5], [4, -1])
    with pytest.raises(ValueError):
        simulate_fluid([0.5, 0.5], [4, 1], mu=1.5, rho=1.4)


# ----------------------------------------------------------------------
# Figure-9 sweep behaviors
# ----------------------------------------------------------------------
def test_three_qos_inversion_point_matches_lemma1():
    """Eq 2 predicts inversion when x/phi_h > share_m/phi_m; with the
    2:1 m:l split the boundary is phi_h / (phi_h + 1.5*phi_m)."""
    rows = sweep_three_qos([i / 100 for i in range(5, 96, 5)],
                           weights=(8, 4, 1), mu=0.8, rho=1.4)
    boundary = 8 / (8 + 1.5 * 4)  # 0.571
    for x, dh, dm, dl in rows:
        if x <= boundary - 0.05:
            assert dh <= dm + 1e-6, f"early inversion at {x}"


def test_heavier_weight_moves_inversion_right():
    shares = [i / 100 for i in range(5, 96, 5)]

    def inversion(rows):
        for x, dh, dm, dl in rows:
            if dh > dm + 1e-9 or dm > dl + 1e-9:
                return x
        return 1.0

    light = inversion(sweep_three_qos(shares, weights=(8, 4, 1)))
    heavy = inversion(sweep_three_qos(shares, weights=(50, 4, 1)))
    assert heavy > light


def test_heavier_weight_costs_qos_m_delay():
    """Fig 9b: weight 50 pushes the region right but QoS_m pays."""
    x = 0.4
    light = sweep_three_qos([x], weights=(8, 4, 1))[0]
    heavy = sweep_three_qos([x], weights=(50, 4, 1))[0]
    assert heavy[2] >= light[2] - 1e-9  # delay_m no smaller
