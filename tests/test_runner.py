"""Unit tests for the sweep orchestration layer (repro.runner).

The experiment under test throughout is fig08 — its points are
analytic (no packet simulation), so whole sweeps run in milliseconds
and the worker-pool / cache / resume behaviors stay cheap to exercise.
"""

import pytest

from repro.cli import main
from repro.runner import (
    Point,
    ResultCache,
    ResultStore,
    UnknownExperimentError,
    UnknownProfileError,
    code_version,
    run_experiment,
)
from repro.runner.registry import driver_for


def test_point_seed_is_deterministic_and_identity_sensitive():
    a = Point("fig08", {"share": 0.5})
    b = Point("fig08", {"share": 0.5})
    c = Point("fig08", {"share": 0.6})
    d = Point("fig08", {"share": 0.5}, replicate=1)
    assert a.seed == b.seed
    assert a.seed != c.seed
    assert a.seed != d.seed
    assert 1 <= a.seed < 2**31


def test_point_params_must_be_json_serializable():
    with pytest.raises(TypeError):
        Point("fig08", {"bad": object()})


def test_cache_hit_miss_and_invalidation(tmp_path):
    cache = ResultCache(tmp_path)
    ver = code_version()
    point = Point("fig08", {"share": 0.5})
    assert cache.get(point, ver) is None  # cold miss
    cache.put(point, ver, {"delay": 1.0})
    assert cache.get(point, ver) == {"delay": 1.0}  # hit
    moved = Point("fig08", {"share": 0.75})
    assert cache.get(moved, ver) is None  # param change misses
    assert cache.get(point, "deadbeef") is None  # code change misses
    assert cache.hits == 1
    assert cache.misses == 3


def test_store_roundtrip_and_missing_run(tmp_path):
    store = ResultStore(tmp_path)
    doc = {"experiment": "fig08", "run_id": "r1", "points": []}
    path = store.write(doc)
    assert path.exists()
    assert store.load("fig08", "r1") == doc
    assert store.list_runs("fig08") == ["r1"]
    assert store.latest_run_id("fig08") == "r1"
    with pytest.raises(FileNotFoundError):
        store.load("fig08", "r2")


def test_registry_rejects_unknown_names():
    with pytest.raises(UnknownExperimentError):
        driver_for("fig99")
    with pytest.raises(UnknownProfileError):
        run_experiment("fig08", profile="warp")


def test_all_registered_drivers_expose_the_sweep_interface():
    from repro.runner.registry import available_experiments

    for name in available_experiments():
        driver = driver_for(name)
        for profile in driver.PROFILES:
            points = driver.sweep(profile)
            assert points, f"{name}/{profile}: empty sweep"
            assert all(p.experiment == name for p in points)


def test_second_run_is_served_from_cache(tmp_path):
    kwargs = dict(
        profile="fast",
        results_dir=tmp_path / "results",
        cache_dir=tmp_path / "cache",
    )
    first = run_experiment("fig08", **kwargs)
    second = run_experiment("fig08", **kwargs)
    assert first.computed == len(first.rows) > 0
    assert second.computed == 0
    assert second.cached == len(second.rows)
    assert second.digest_hex == first.digest_hex
    assert second.rows == first.rows


def test_resume_recomputes_zero_points(tmp_path):
    kwargs = dict(
        profile="fast",
        use_cache=False,
        results_dir=tmp_path / "results",
    )
    first = run_experiment("fig08", **kwargs)
    resumed = run_experiment("fig08", resume=first.run_id, **kwargs)
    assert resumed.run_id == first.run_id
    assert resumed.computed == 0
    assert resumed.resumed == len(first.rows)
    assert resumed.digest_hex == first.digest_hex


def test_worker_count_does_not_change_results(tmp_path):
    serial = run_experiment(
        "fig08",
        profile="fast",
        workers=1,
        use_cache=False,
        results_dir=tmp_path / "serial",
    )
    parallel = run_experiment(
        "fig08",
        profile="fast",
        workers=4,
        use_cache=False,
        results_dir=tmp_path / "parallel",
    )
    assert parallel.rows == serial.rows
    assert parallel.digest_hex == serial.digest_hex


def test_replicates_expand_the_sweep(tmp_path):
    single = run_experiment(
        "fig08",
        profile="fast",
        use_cache=False,
        results_dir=tmp_path / "results",
    )
    doubled = run_experiment(
        "fig08",
        profile="fast",
        replicates=2,
        use_cache=False,
        results_dir=tmp_path / "results",
    )
    assert len(doubled.rows) == 2 * len(single.rows)


def test_failing_point_raises_with_context(tmp_path, monkeypatch):
    driver = driver_for("fig08")

    def boom(point, seed):
        raise ValueError("synthetic point failure")

    monkeypatch.setattr(driver, "run_point", boom)
    with pytest.raises(RuntimeError, match="synthetic point failure"):
        run_experiment(
            "fig08",
            profile="fast",
            use_cache=False,
            results_dir=tmp_path / "results",
        )


def test_cli_run_rejects_unknown_figure_and_profile(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err
    assert main(["run", "fig08", "--profile", "warp"]) == 2
    assert "unknown profile" in capsys.readouterr().err


def test_cli_run_missing_resume_id_is_a_clean_error(capsys, tmp_path):
    argv = ["run", "fig08", "--resume", "nope"]
    argv += ["--results-dir", str(tmp_path / "results")]
    assert main(argv) == 2
    assert "no stored run" in capsys.readouterr().err


def test_cli_run_fig08_fast_end_to_end(capsys, tmp_path):
    argv = ["run", "fig08", "--profile", "fast"]
    argv += ["--results-dir", str(tmp_path / "results")]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "shape checks passed" in out
    assert "run digest" in out
