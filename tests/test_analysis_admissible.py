"""Unit tests for admissible-region helpers and admitted-traffic bounds."""

import pytest

from repro.analysis.admissible import (
    delay_vs_share_profile,
    guaranteed_admitted_share,
    inversion_free,
    is_admissible_mix,
    max_admissible_high_share,
)


def test_eq2_ordering_accepts_balanced_mix():
    # shares proportional to weights: a_i/phi_i all equal.
    assert is_admissible_mix([8 / 13, 4 / 13, 1 / 13], [8, 4, 1])


def test_eq2_ordering_rejects_top_heavy_mix():
    assert not is_admissible_mix([0.9, 0.08, 0.02], [8, 4, 1])


def test_eq2_validation():
    with pytest.raises(ValueError):
        is_admissible_mix([0.5, 0.5], [8, 4, 1])


def test_inversion_free_consistent_with_eq2_under_overload():
    weights = [8, 4, 1]
    # Deep overload: every class above its guaranteed rate.
    ok_mix = [0.45, 0.35, 0.20]
    bad_mix = [0.85, 0.10, 0.05]
    assert is_admissible_mix(ok_mix, weights)
    assert inversion_free(ok_mix, weights, mu=0.8, rho=2.5)
    assert not is_admissible_mix(bad_mix, weights)
    assert not inversion_free(bad_mix, weights, mu=0.8, rho=2.5)


def test_max_admissible_share_matches_lemma_two_qos():
    """For 2 QoS under full overload the boundary is phi/(phi+1)."""
    share = max_admissible_high_share([4, 1], mu=0.8, rho=2.0, tol=5e-4)
    assert share == pytest.approx(0.8, abs=0.01)


def test_max_admissible_share_three_qos():
    """With m:l fixed 2:1, Lemma 1 gives phi_h/(phi_h + 1.5 phi_m)."""
    share = max_admissible_high_share([8, 4, 1], mu=0.8, rho=2.0, tol=5e-4)
    assert share == pytest.approx(8 / 14, abs=0.02)


def test_max_admissible_share_grows_with_weight():
    light = max_admissible_high_share([8, 4, 1], mu=0.8, rho=1.4)
    heavy = max_admissible_high_share([50, 4, 1], mu=0.8, rho=1.4)
    assert heavy > light


def test_guaranteed_admitted_share_formula():
    # X_i <= (phi_i / sum phi) * mu / rho.
    val = guaranteed_admitted_share([8, 4, 1], 0, mu=0.8, rho=1.4)
    assert val == pytest.approx((8 / 13) * (0.8 / 1.4))


def test_guaranteed_share_inverse_in_rho():
    """The Fig-16 law: double the burstiness, halve the guarantee."""
    a = guaranteed_admitted_share([8, 4, 1], 0, mu=0.8, rho=1.4)
    b = guaranteed_admitted_share([8, 4, 1], 0, mu=0.8, rho=2.8)
    assert a / b == pytest.approx(2.0)


def test_guaranteed_share_validation():
    with pytest.raises(ValueError):
        guaranteed_admitted_share([8, 4, 1], 5, mu=0.8, rho=1.4)
    with pytest.raises(ValueError):
        guaranteed_admitted_share([8, 4, 1], 0, mu=0.8, rho=0.5)


def test_delay_profile_rows():
    rows = delay_vs_share_profile([8, 4, 1], [0.2, 0.5, 0.8])
    assert len(rows) == 3
    for x, delays in rows:
        assert len(delays) == 3
        assert all(d >= 0 for d in delays)
    # Higher QoS_h share -> more QoS_h delay (monotone over this range).
    assert rows[0][1][0] <= rows[2][1][0] + 1e-9


def test_delay_profile_two_qos():
    rows = delay_vs_share_profile([4, 1], [0.3, 0.9])
    assert all(len(delays) == 2 for _, delays in rows)
