"""Unit tests for ports, links, switches, and hosts."""

import pytest

from repro.net.link import Port
from repro.net.node import Host, Node, Switch
from repro.net.packet import Packet
from repro.net.queues import FifoScheduler, WfqScheduler
from repro.sim.engine import Simulator


class Sink(Node):
    def __init__(self, sim):
        super().__init__(sim, "sink")
        self.received = []

    def receive(self, pkt):
        self.received.append((self.sim.now, pkt))


def make_port(sim, rate=1e9, prop=100, buffer_bytes=10**6):
    port = Port(sim, FifoScheduler(buffer_bytes), rate_bps=rate, prop_delay_ns=prop)
    sink = Sink(sim)
    port.connect(sink)
    return port, sink


def test_serialization_time_exact():
    sim = Simulator()
    port, _ = make_port(sim, rate=1e9)  # 1 Gbps: 8 ns per byte
    assert port.serialization_ns(1000) == 8000
    assert port.serialization_ns(1) == 8


def test_serialization_cache_is_bounded_and_exact():
    from repro.net.link import _SER_CACHE_MAX

    sim = Simulator()
    port, sink = make_port(sim, rate=1e9, buffer_bytes=10**9)
    # A worst-case workload with a distinct size per packet must not
    # grow the memo past its cap, and every cached-or-recomputed
    # serialization time must equal the direct computation.
    sizes = list(range(64, 64 + 2 * _SER_CACHE_MAX))
    for size in sizes:
        port.send(Packet(0, 1, size))
    sim.run()
    assert len(port._ser_cache) <= _SER_CACHE_MAX
    assert len(sink.received) == len(sizes)
    for size, tx in port._ser_cache.items():
        assert tx == port.serialization_ns(size)


def test_single_packet_delivery_time():
    sim = Simulator()
    port, sink = make_port(sim, rate=1e9, prop=100)
    port.send(Packet(0, 1, 1000))
    sim.run()
    t, _ = sink.received[0]
    assert t == 8000 + 100  # serialization + propagation


def test_back_to_back_packets_pipeline():
    sim = Simulator()
    port, sink = make_port(sim, rate=1e9, prop=0)
    for _ in range(3):
        port.send(Packet(0, 1, 1000))
    sim.run()
    times = [t for t, _ in sink.received]
    assert times == [8000, 16000, 24000]


def test_port_work_conservation_after_idle():
    sim = Simulator()
    port, sink = make_port(sim, rate=1e9, prop=0)
    port.send(Packet(0, 1, 1000))
    sim.run()
    sim.schedule(0, port.send, Packet(0, 1, 1000))
    sim.run()
    assert [t for t, _ in sink.received] == [8000, 16000]


def test_port_counts_drops():
    sim = Simulator()
    port, _ = make_port(sim, buffer_bytes=1500)
    assert port.send(Packet(0, 1, 1000))  # dequeued straight into service
    assert port.send(Packet(0, 1, 1000))  # waits in the 1500 B buffer
    assert not port.send(Packet(0, 1, 1000))  # 2000 B would exceed it
    assert port.packets_dropped == 1


def test_unconnected_port_raises():
    sim = Simulator()
    port = Port(sim, FifoScheduler(1000))
    with pytest.raises(RuntimeError):
        port.send(Packet(0, 1, 100))


def test_port_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(ValueError):
        Port(sim, FifoScheduler(1000), rate_bps=0)
    with pytest.raises(ValueError):
        Port(sim, FifoScheduler(1000), prop_delay_ns=-1)


def test_on_transmit_hooks_fire_per_packet():
    sim = Simulator()
    port, _ = make_port(sim)
    seen = []
    port.on_transmit.append(lambda pkt, now: seen.append(pkt.uid))
    a, b = Packet(0, 1, 100), Packet(0, 1, 100)
    port.send(a)
    port.send(b)
    sim.run()
    assert seen == [a.uid, b.uid]


def test_switch_routes_by_destination():
    sim = Simulator()
    switch = Switch(sim, "sw")
    ports = {}
    sinks = {}
    for dst in (1, 2):
        port, sink = make_port(sim)
        switch.add_port(port)
        switch.set_route(dst, port)
        ports[dst], sinks[dst] = port, sink
    switch.receive(Packet(0, 1, 100))
    switch.receive(Packet(0, 2, 100))
    switch.receive(Packet(0, 2, 100))
    sim.run()
    assert len(sinks[1].received) == 1
    assert len(sinks[2].received) == 2
    assert switch.packets_forwarded == 3


def test_switch_counts_unrouted():
    sim = Simulator()
    switch = Switch(sim, "sw")
    switch.receive(Packet(0, 99, 100))
    assert switch.packets_unrouted == 1


def test_host_dispatches_to_handler():
    sim = Simulator()
    host = Host(sim, 7)
    got = []
    host.handler = got.append
    host.receive(Packet(0, 7, 100))
    assert len(got) == 1
    assert host.packets_received == 1


def test_host_without_nic_raises():
    sim = Simulator()
    host = Host(sim, 0)
    with pytest.raises(RuntimeError):
        host.send(Packet(0, 1, 100))


def test_wfq_port_respects_weights_end_to_end():
    """Saturate a WFQ port with two backlogged classes and check the
    delivered byte ratio over a window matches the weights."""
    sim = Simulator()
    port = Port(sim, WfqScheduler((4, 1), 10**9), rate_bps=1e9, prop_delay_ns=0)
    sink = Sink(sim)
    port.connect(sink)
    for _ in range(200):
        port.send(Packet(0, 1, 1000, qos=0))
        port.send(Packet(0, 1, 1000, qos=1))
    sim.run(until=200 * 8000)  # enough for ~200 packets
    counts = [0, 0]
    for _, pkt in sink.received:
        counts[pkt.qos] += 1
    assert counts[0] / counts[1] == pytest.approx(4.0, rel=0.1)
