"""Figure 13 bench: outstanding RPCs per switch port, before/after.

Paper: with Aequitas the QoS_h+QoS_m outstanding count drops sharply
(they finish faster) while QoS_l's rises; the tail decrease of the
former outweighs the latter's increase — the Little's-law mechanism
behind the non-zero-sum latency result.
"""

from repro.experiments import fig13


def test_fig13_outstanding(run_once):
    result = run_once(fig13.run, num_hosts=8, duration_ms=30.0, warmup_ms=15.0)
    print()
    print(result.table())
    hm_without, hm_with = result.tail_outstanding("hm", 99.0)
    l_without, l_with = result.tail_outstanding("l", 99.0)
    # High/medium outstanding shrinks with admission control...
    assert hm_with < hm_without
    # ...while the scavenger class absorbs the downgraded work.
    assert l_with >= l_without
