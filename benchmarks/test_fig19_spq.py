"""Figure 19 bench: Aequitas vs strict priority under the race to the top.

Paper: as the QoS_h-share grows 50% -> 80%, SPQ's QoS_m tail explodes
(starvation behind the high class) while Aequitas keeps both SLO
classes predictable by downgrading the excess.
"""

from repro.experiments import fig19


def test_fig19_spq(run_once):
    result = run_once(
        fig19.run,
        shares=(0.5, 0.65, 0.8),
        num_hosts=6,
        duration_ms=24.0,
        warmup_ms=12.0,
    )
    print()
    print(result.table())
    first, last = result.rows[0], result.rows[-1]
    # SPQ's QoS_m tail grows sharply with the QoS_h share...
    assert last.spq_m_us > 1.5 * first.spq_m_us
    # ...and ends far above Aequitas' at the top of the sweep.
    assert last.spq_m_us > 2.0 * last.aequitas_m_us
    # Aequitas holds QoS_h near its SLO at every point.
    for row in result.rows:
        assert row.aequitas_h_us < 2.0 * result.slo_h_us
