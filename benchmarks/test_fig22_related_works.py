"""Figure 22 bench: Aequitas vs pFabric, QJump, D3, PDQ, Homa.

Paper: Aequitas admits the most SLO-compliant QoS_h traffic (70.3%) at
full utilization; D3/PDQ drop to ~52% utilization through early
termination; pFabric/Homa favor small RPCs and blow the large-RPC
tails; QJump's host throttles give good packet latency but weaker
RPC-level SLO compliance.
"""

from repro.experiments import fig22


def test_fig22_related_works(run_once):
    result = run_once(fig22.run)
    print()
    print(result.table())
    aeq = result.outcome("aequitas")
    # Aequitas: full utilization, the lowest QoS_h tail of any scheme,
    # and a solid majority-admitted SLO-met fraction.  (Deviation noted
    # in EXPERIMENTS.md: with our truncated size distribution the
    # byte-weighted SLO-met metric flatters SRPT schemes, whose misses
    # concentrate in a thin sliver of bytes; the paper's 5-decade size
    # range punishes them much harder on that metric.)
    assert aeq.utilization > 0.95
    assert aeq.slo_met_h > 0.4
    for scheme in ("pfabric", "qjump", "d3", "pdq", "homa"):
        assert aeq.tails_us[0] <= result.outcome(scheme).tails_us[0] + 1e-9, scheme
    # Early-terminating deadline schemes pay in utilization (paper ~52%).
    for scheme in ("d3", "pdq"):
        out = result.outcome(scheme)
        assert out.utilization < aeq.utilization - 0.15, scheme
        assert out.terminated > 0, scheme
    # SRPT-based schemes blow out the QoS_h tail relative to Aequitas.
    assert result.outcome("pfabric").tails_us[0] > 2 * aeq.tails_us[0]
    assert result.outcome("homa").tails_us[0] > 2 * aeq.tails_us[0]
