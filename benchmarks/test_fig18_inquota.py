"""Figure 18 bench: in-quota channels keep p_admit ~ 1 (max-min).

Paper: a channel using 10% of line rate on QoS_h (below fair share)
keeps its admit probability near 1.0 and its full 10 Gbps; the other
channel reclaims the slack.  Paper's 1st-percentile p_admit: 0.82.
"""

from repro.experiments import fig18


def test_fig18_inquota(run_once):
    result = run_once(fig18.run, duration_ms=60.0)
    print()
    print(result.table())
    a = result.channel_a
    print(f"Channel A p1(p_admit) = {a.p_admit_percentile(1.0):.2f} (paper: 0.82)")
    assert a.steady_p_admit() > 0.9
    assert a.p_admit_percentile(1.0) > 0.6
    # A keeps its demand; B reclaims the excess (max-min, not equal).
    assert a.steady_goodput_gbps() > 8.0
    assert result.channel_b.steady_goodput_gbps() > a.steady_goodput_gbps()
