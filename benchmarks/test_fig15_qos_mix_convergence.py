"""Figure 15 bench: admitted QoS-mix is independent of the input mix.

Paper: four very different input mixes all converge to the same
SLO-determined admitted mix (~25/26/49), the self-consistent input
((25,25,50)) sees almost no downgrades, and the QoS_h tail stays at
the SLO throughout — the antidote to the race to the top.
"""

from repro.experiments import fig15


def test_fig15_qos_mix_convergence(run_once):
    result = run_once(
        fig15.run, num_hosts=8, duration_ms=30.0, warmup_ms=15.0
    )
    print()
    print(result.table())
    # Admitted QoS_h share varies little across wildly different inputs.
    assert result.spread_of_admitted_high() < 0.15
    # Self-consistency: input == sustainable mix -> almost no downgrades.
    self_consistent = result.cases[0]
    assert self_consistent.input_mix == (0.25, 0.25, 0.50)
    assert self_consistent.downgrade_fraction < 0.05
    # SLO compliance for every input mix.
    for case in result.cases:
        assert case.qos_h_tail_us < 1.5 * result.slo_high_us
