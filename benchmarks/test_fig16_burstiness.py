"""Figure 16 bench: admitted traffic is inversely proportional to rho.

Paper: sweeping burst load 1.4 -> 2.2 shrinks the admitted QoS_h share
from ~33% to ~18%, fitting C/rho — the Section-5.2 guarantee
X_i <= g_i * mu / rho made visible.
"""

from repro.experiments import fig16


def test_fig16_burstiness(run_once):
    result = run_once(
        fig16.run,
        rhos=(1.4, 1.8, 2.2),
        num_hosts=8,
        duration_ms=25.0,
        warmup_ms=12.0,
    )
    print()
    print(result.table())
    shares = [share for _, share in result.rows]
    # Monotone decrease with burstiness.
    assert shares[0] > shares[-1]
    # The C/rho fit holds to ~25% mean relative error.
    assert result.fit_error() < 0.25
