"""Figure 12 bench: cluster tail RNL w/ vs w/o Aequitas.

Paper (33 nodes): w/o Aequitas 129/543 us tails vs SLOs 15/25; with it
16/26 — and QoS_l improves too (not zero-sum).  We assert the same
structure at reduced node count: SLO classes violated without
admission, tracked with it.
"""

from repro.experiments import fig12


def test_fig12_cluster_rnl(run_once):
    result = run_once(fig12.run, num_hosts=8, duration_ms=30.0, warmup_ms=15.0)
    print()
    print(result.table())
    # Without Aequitas: both SLO classes violated.
    assert result.without[0] > result.slo_us[0]
    assert result.without[1] > result.slo_us[1]
    # With Aequitas: tails land near the SLOs (within 1.5x at p99.9).
    assert result.with_aequitas[0] < 1.5 * result.slo_us[0]
    assert result.with_aequitas[1] < 1.5 * result.slo_us[1]
    # Not a zero-sum game: the scavenger class improves as well.
    assert result.with_aequitas[2] < result.without[2]
