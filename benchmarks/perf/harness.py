"""Timing harness around the canonical scenarios.

Measures only ``Simulator.run`` (setup is excluded), repeats each
scenario and keeps the fastest repeat (the standard way to suppress
scheduler / allocator noise on a shared machine), and verifies the
digest is identical across repeats — a free determinism check on every
benchmark run.

Output schema (``BENCH_*.json``)::

    {
      "budget_events": 400000,
      "repeats": 3,
      "scenarios": {
        "<name>": {
          "events": int,          # events actually fired
          "wall_s": float,        # best repeat
          "events_per_sec": float,
          "sim_ns": int,          # simulated time covered
          "digest": {...}, "digest_hex": "..."
        }
      },
      "backends": {               # with --backend: per-kernel rows
        "<backend>": {"scenarios": {...}}   # same row shape as above
      },
      "digest_parity": true,      # with --backend: cross-kernel check
      "baseline": {...},          # same shape, from --baseline FILE
      "speedup": {"<name>": float}
    }

With ``--backend`` the top-level ``scenarios`` table holds the rows of
the *first* requested backend, so baselines and speedups keep working
unchanged; every further backend must reproduce the same digest hex or
the run aborts.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Dict, Iterable, Iterator, List, Optional

from benchmarks.perf.scenarios import SCENARIOS
from repro.sim.backend import BACKEND_ENV_VAR, BACKENDS, backend_available
from repro.stats.digest import digest_hex


@contextlib.contextmanager
def _backend_env(backend: Optional[str]) -> Iterator[None]:
    """Pin ``REPRO_BACKEND`` for the duration (construction reads it)."""
    if backend is None:
        yield
        return
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = backend
    try:
        yield
    finally:
        if previous is None:
            del os.environ[BACKEND_ENV_VAR]
        else:
            os.environ[BACKEND_ENV_VAR] = previous


def run_scenario(
    name: str,
    budget: int,
    seed: int = 42,
    repeats: int = 3,
    instrumented: bool = False,
    backend: Optional[str] = None,
) -> Dict:
    """Time one scenario; returns the result row for the JSON report.

    ``instrumented=True`` builds and runs the scenario under a full
    observability context (tracer + profiler + registry), which is how
    the traced-vs-plain overhead and the digest-parity guarantee are
    measured.  The context must be active during *construction* — hooks
    bind then, not at run time.

    ``backend`` pins ``REPRO_BACKEND`` around scenario construction so
    the run uses that kernel; ``None`` inherits the environment.
    """
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None
    best: Optional[Dict] = None
    first_hex = None
    for _ in range(max(1, repeats)):
        if instrumented:
            from repro.obs.runtime import ObsContext, activate, deactivate

            activate(ObsContext.full())
            try:
                with _backend_env(backend):
                    built = build(budget, seed)
                sim = built.sim
                t0 = time.perf_counter()
                sim.run(**built.run_kwargs)
                wall = time.perf_counter() - t0
                digest = built.digest_fn()
            finally:
                deactivate()
        else:
            with _backend_env(backend):
                built = build(budget, seed)
            sim = built.sim
            t0 = time.perf_counter()
            sim.run(**built.run_kwargs)
            wall = time.perf_counter() - t0
            digest = built.digest_fn()
        hex_ = digest_hex(digest)
        if first_hex is None:
            first_hex = hex_
        elif hex_ != first_hex:
            raise RuntimeError(
                f"{name}: nondeterministic result across repeats "
                f"({hex_} != {first_hex})"
            )
        row = {
            "events": sim.events_processed,
            "wall_s": round(wall, 4),
            "events_per_sec": round(sim.events_processed / wall, 1),
            "sim_ns": sim.now,
            "digest": digest,
            "digest_hex": hex_,
        }
        if best is None or row["events_per_sec"] > best["events_per_sec"]:
            best = row
    return best


def run_suite(
    budget: int = 400_000,
    seed: int = 42,
    repeats: int = 3,
    scenarios: Optional[Iterable[str]] = None,
    baseline: Optional[Dict] = None,
    instrumented: bool = False,
    backends: Optional[Iterable[str]] = None,
    log=print,
) -> Dict:
    """Run every scenario; optionally fold in a baseline for speedups.

    ``instrumented=True`` additionally runs each scenario under a full
    observability context and records the traced-vs-plain overhead plus
    whether the digest stayed bit-identical (the zero-overhead-off
    contract's measurable half).

    ``backends`` times every scenario once per kernel backend and
    enforces cross-backend digest parity; the first backend's rows fill
    the top-level ``scenarios`` table (what baselines compare against).
    """
    names = list(scenarios) if scenarios else list(SCENARIOS)
    backend_list: List[Optional[str]] = (
        list(backends) if backends else [None]
    )
    report: Dict = {
        "budget_events": budget,
        "seed": seed,
        "repeats": repeats,
        "scenarios": {},
    }
    if backends:
        report["backends"] = {b: {"scenarios": {}} for b in backend_list}
    if instrumented:
        report["instrumented"] = {}
    for name in names:
        primary: Optional[Dict] = None
        for backend in backend_list:
            row = run_scenario(
                name, budget, seed=seed, repeats=repeats, backend=backend
            )
            label = f"{name}[{backend}]" if backend else name
            log(
                f"{label:24s} {row['events']:>9d} events  "
                f"{row['wall_s']:>7.3f}s  {row['events_per_sec']:>12,.0f} ev/s"
            )
            if backend is not None:
                report["backends"][backend]["scenarios"][name] = row
            if primary is None:
                primary = row
                report["scenarios"][name] = row
            elif row["digest_hex"] != primary["digest_hex"]:
                raise RuntimeError(
                    f"{name}: backend {backend!r} diverged from "
                    f"{backend_list[0]!r} "
                    f"({row['digest_hex']} != {primary['digest_hex']})"
                )
        assert primary is not None
        row = primary
        if instrumented:
            traced = run_scenario(
                name, budget, seed=seed, repeats=repeats, instrumented=True
            )
            overhead = row["events_per_sec"] / traced["events_per_sec"]
            match = traced["digest_hex"] == row["digest_hex"]
            report["instrumented"][name] = {
                "events_per_sec": traced["events_per_sec"],
                "wall_s": traced["wall_s"],
                "overhead_x": round(overhead, 3),
                "digest_match": match,
            }
            log(
                f"{name:24s} instrumented {traced['events_per_sec']:>12,.0f} ev/s  "
                f"overhead {overhead:.2f}x  "
                f"(digest {'MATCH' if match else 'DIFFERS'})"
            )
            if not match:
                raise RuntimeError(
                    f"{name}: instrumented run diverged from plain run "
                    f"({traced['digest_hex']} != {row['digest_hex']})"
                )
    if backends:
        # Reaching here means every backend reproduced the first
        # backend's digest on every scenario.
        report["digest_parity"] = True
    if baseline is not None:
        report["baseline"] = baseline
        report["speedup"] = {}
        base_rows = baseline.get("scenarios", {})
        for name, row in report["scenarios"].items():
            base = base_rows.get(name)
            if not base:
                continue
            ratio = row["events_per_sec"] / base["events_per_sec"]
            report["speedup"][name] = round(ratio, 3)
            match = (
                "digest MATCH"
                if base.get("digest_hex") == row["digest_hex"]
                else "digest DIFFERS"
            )
            log(f"{name:24s} speedup {ratio:5.2f}x  ({match})")
    return report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="benchmarks.perf", description="simulator throughput benchmarks"
    )
    parser.add_argument("--budget", type=int, default=400_000,
                        help="event budget per scenario (default 400k)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--scenario", action="append", dest="scenarios",
                        choices=sorted(SCENARIOS), default=None,
                        help="run only these scenarios (repeatable)")
    parser.add_argument("--baseline", type=str, default=None,
                        help="earlier report to compute speedups against")
    parser.add_argument("--instrumented", action="store_true",
                        help="also run each scenario under full observability "
                             "and report the overhead + digest parity")
    parser.add_argument("--backend", action="append", dest="backends",
                        choices=sorted(BACKENDS) + ["all"], default=None,
                        help="time each scenario under this kernel backend "
                             "(repeatable; 'all' = every backend available "
                             "on this host) and enforce digest parity")
    parser.add_argument("--note", action="append", dest="notes", default=None,
                        help="free-form annotation recorded in the report "
                             "(repeatable)")
    parser.add_argument("--output", type=str, default=None,
                        help="write the JSON report here (e.g. BENCH_PR1.json)")
    args = parser.parse_args(argv)

    backends = args.backends
    if backends and "all" in backends:
        backends = list(BACKENDS)
    if backends:
        for name in list(backends):
            if not backend_available(name):
                print(f"backend {name!r} unavailable on this host; skipping")
                backends.remove(name)
        if not backends:
            parser.error("no requested backend is available on this host")

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")
    try:
        report = run_suite(
            budget=args.budget,
            seed=args.seed,
            repeats=args.repeats,
            scenarios=args.scenarios,
            baseline=baseline,
            instrumented=args.instrumented,
            backends=backends,
        )
    except ValueError as exc:
        # Unknown scenario names surface as a clean CLI error (argparse
        # guards --scenario, but run_suite is also called from code).
        parser.error(str(exc))
    if args.notes:
        report["notes"] = args.notes
    if args.output:
        out_dir = os.path.dirname(args.output)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0
