"""Canonical performance scenarios.

Each scenario builds a fresh simulation and returns a :class:`Built`
bundle: the simulator (the harness times ``sim.run`` itself so setup
cost is excluded), the keyword arguments to run with, and a digest
callable evaluated after the run.  Scenarios are seeded and must be
bit-deterministic: same seed, same digest — that property is what lets
the harness prove an optimization changed only speed, not results.

The three scenarios cover the three layers the paper's evaluation
stresses: raw port/scheduler service (WFQ saturation), the full RPC
stack with admission control under incast, and a multi-switch fabric
with an oversubscribed core.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.admission import AdmissionParams
from repro.core.qos import Priority
from repro.core.slo import SLOMap
from repro.experiments.cluster import ClusterConfig, attach_traffic, build_cluster
from repro.net.link import Port
from repro.net.node import Node
from repro.net.packet import MTU_BYTES, Packet
from repro.net.queues import WfqScheduler
from repro.net.topology import build_two_tier, wfq_factory
from repro.rpc.sizes import FixedSize
from repro.rpc.stack import MetricsCollector, RpcStack
from repro.rpc.workload import OpenLoopSource, steady_pattern
from repro.sim.engine import Simulator, ns_from_ms, ns_from_us
from repro.stats.digest import completed_rpc_digest
from repro.transport.reliable import TransportConfig, TransportEndpoint
from repro.transport.swift import SwiftCC, SwiftParams


@dataclass
class Built:
    """One constructed scenario, ready to time."""

    sim: Simulator
    run_kwargs: Dict
    digest_fn: Callable[[], Dict]


class _Sink(Node):
    """Terminates a wire and counts what arrives."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, "sink")
        self.packets = 0
        self.bytes = 0

    def receive(self, pkt: Packet) -> None:
        self.packets += 1
        self.bytes += pkt.size_bytes


def wfq_saturation(budget: int, seed: int) -> Built:
    """Single-port WFQ kept saturated by a periodic feeder.

    This is the tightest loop the simulator has — nearly every event is
    a port transmit or a delivery — so it isolates the engine + port +
    scheduler hot path from transport and RPC-stack overhead.
    """
    sim = Simulator()
    sched = WfqScheduler((8, 4, 1), buffer_bytes=256 * 1024 * 1024)
    port = Port(sim, sched, rate_bps=100e9, prop_delay_ns=500, name="bench")
    sink = _Sink(sim)
    port.connect(sink)
    # The QoS pattern is drawn once at build time so the feeder itself
    # stays off the measured profile: what we time is the simulator's
    # event loop and the port/scheduler service path, not the workload.
    rng = random.Random(seed)
    pattern = [rng.randrange(3) for _ in range(8192)]
    next_qos = itertools.cycle(pattern).__next__
    sizes = (MTU_BYTES + 64, MTU_BYTES // 2, MTU_BYTES // 4)
    target_depth = 256

    def feed() -> None:
        send = port.send
        while sched.packets_queued < target_depth:
            qos = next_qos()
            send(Packet(src=0, dst=1, size_bytes=sizes[qos], qos=qos))
        sim.schedule(20_000, feed)

    sim.schedule(0, feed)

    def digest() -> Dict:
        return {
            "packets_sent": port.packets_sent,
            "bytes_sent": port.bytes_sent,
            "sink_packets": sink.packets,
            "sink_bytes": sink.bytes,
            "final_ns": sim.now,
        }

    return Built(sim, {"max_events": budget}, digest)


def star_incast_admission(budget: int, seed: int) -> Built:
    """Star topology, 7 senders incasting one receiver, Aequitas on.

    Exercises the full stack: open-loop sources, admission decisions,
    Swift transport, WFQ egress, RNL measurement and AIMD feedback.
    """
    cfg = ClusterConfig(
        scheme="aequitas",
        num_hosts=8,
        duration_ms=10_000.0,  # horizon never binds; the event budget does
        warmup_ms=1.0,
        seed=seed,
        traffic_fn=_incast_traffic,
    )
    result = build_cluster(cfg)
    attach_traffic(result)
    return Built(
        result.sim,
        {"until": ns_from_ms(cfg.duration_ms), "max_events": budget},
        lambda: completed_rpc_digest(result.metrics),
    )


def _incast_traffic(sim, stacks, cfg) -> None:
    for stack in stacks[1:]:
        OpenLoopSource(
            sim,
            stack,
            [0],
            {Priority.PC: 0.6, Priority.NC: 0.2, Priority.BE: 0.2},
            FixedSize(32 * 1024),
            steady_pattern(0.4),
            line_rate_bps=cfg.line_rate_bps,
            rng=random.Random(cfg.seed * 7919 + stack.host.host_id),
            stop_ns=ns_from_ms(cfg.duration_ms),
        )


def two_tier_overload(budget: int, seed: int) -> Built:
    """Two ToRs behind a 2x-oversubscribed spine, QoS_h overloading
    the core, admission enabled — the §2.2.2 'overload anywhere' case."""
    sim = Simulator()
    net = build_two_tier(
        sim,
        num_tors=2,
        hosts_per_tor=3,
        scheduler_factory=wfq_factory((8, 4, 1)),
        line_rate_bps=100e9,
        uplink_oversubscription=2.0,
    )
    slo_map = SLOMap.for_three_levels(
        ns_from_us(15), ns_from_us(25), target_percentile=99.0
    )
    config = TransportConfig(
        cc_factory=lambda: SwiftCC(SwiftParams(target_delay_ns=ns_from_us(25))),
        ack_bypass=True,
    )
    endpoints = [TransportEndpoint(sim, h, config) for h in net.hosts]
    for a in endpoints:
        for b in endpoints:
            if a is not b:
                a.register_peer(b)
    metrics = MetricsCollector()
    params = AdmissionParams(alpha=0.05)
    stacks = [
        RpcStack(sim, net.hosts[i], endpoints[i], slo_map, params, metrics,
                 seed=seed, admission_enabled=True)
        for i in range(net.num_hosts)
    ]
    stop_ns = ns_from_ms(10_000.0)
    for i in range(3):
        OpenLoopSource(
            sim,
            stacks[i],
            [3, 4, 5],
            {Priority.PC: 0.8, Priority.BE: 0.2},
            FixedSize(32 * 1024),
            steady_pattern(0.8),
            rng=random.Random(seed * 13 + i),
            stop_ns=stop_ns,
        )
    return Built(
        sim,
        {"until": stop_ns, "max_events": budget},
        lambda: completed_rpc_digest(metrics),
    )


#: name -> builder; ``wfq_saturation`` is the tentpole's speedup target.
SCENARIOS: Dict[str, Callable[[int, int], Built]] = {
    "wfq_saturation": wfq_saturation,
    "star_incast_admission": star_incast_admission,
    "two_tier_overload": two_tier_overload,
}
