"""Reproducible simulator-throughput benchmarks.

Run with::

    PYTHONPATH=src python -m benchmarks.perf [--budget N] [--output FILE]

Each canonical scenario (single-port WFQ saturation, star-topology
incast with admission enabled, two-tier overload) runs for a fixed
event budget and reports events/sec, wall time, and a determinism
digest.  Results are written to a machine-readable ``BENCH_*.json`` at
the repo root so every PR appends to the same trajectory.
"""

from benchmarks.perf.harness import run_suite  # noqa: F401
from benchmarks.perf.scenarios import SCENARIOS  # noqa: F401
