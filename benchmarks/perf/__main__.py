import sys

from benchmarks.perf.harness import main

sys.exit(main())
