"""Figure 20 bench: size-normalized SLOs across a 32/64 KB size mix.

Paper: with per-MTU SLOs and size-proportional decrease, both size
populations meet the same normalized SLO under Aequitas, while the
baseline violates it for both.
"""

from repro.experiments import fig20


def test_fig20_mixed_sizes(run_once):
    result = run_once(
        fig20.run, num_hosts=8, duration_ms=25.0, warmup_ms=12.0
    )
    print()
    print(result.table())
    for size_label in ("32KB", "64KB"):
        with_aeq = result.tails["aequitas"][size_label]
        without = result.tails["wfq"][size_label]
        # Aequitas meets the normalized QoS_h SLO for both sizes.
        assert with_aeq[0] < 1.5 * result.slo_h_us, size_label
        # And improves (or at least never worsens) on the baseline.
        assert with_aeq[0] <= without[0] * 1.1, size_label
    # The two size classes see comparable normalized QoS_h tails
    # (within 2x), i.e., no size is structurally disadvantaged.
    t32 = result.tails["aequitas"]["32KB"][0]
    t64 = result.tails["aequitas"]["64KB"][0]
    assert max(t32, t64) / max(min(t32, t64), 1e-9) < 2.0
