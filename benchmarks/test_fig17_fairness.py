"""Figure 17 bench: AIMD fairness between unequal channels.

Paper: channels demanding 80 vs 40 Gbps of QoS_h converge to *equal*
admitted throughput via *different* admit probabilities, within ~10 ms.
(Laptop scaling: faster alpha, so convergence is judged on the running
average; see the driver.)
"""

from repro.experiments import fig17


def test_fig17_fairness(run_once):
    result = run_once(fig17.run, duration_ms=100.0)
    print()
    print(result.table())

    def mean_goodput(trace):
        tail = trace.goodput_gbps[len(trace.goodput_gbps) // 2:]
        return sum(v for _, v in tail) / len(tail)

    a = mean_goodput(result.channel_a)
    b = mean_goodput(result.channel_b)
    print(f"time-averaged goodput: A={a:.1f} Gbps, B={b:.1f} Gbps")
    # Neither channel starves, and the split is far closer to equal than
    # the 2:1 demand ratio (at the laptop-scaled alpha the AIMD cycles
    # are large, so exact equality needs much longer horizons).
    assert a > 5.0 and b > 5.0
    assert max(a, b) / min(a, b) < 1.7
    conv = result.convergence_ms()
    assert conv is not None and conv < 80.0
