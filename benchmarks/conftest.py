"""Shared benchmark plumbing.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round) — these are *reproduction* benchmarks whose payload is the
printed paper-versus-measured table, not microsecond timing stability.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` once under pytest-benchmark and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
