"""Figure 24 bench: Phase-1 alignment across a cluster ensemble.

Paper: the fleetwide Phase-1 rollout drove priority/QoS misalignment
from up to 80% to ~zero and cut high-priority 99p RNL by up to 53%
(mean ~10%), with the rollout completing over ~5 weeks.  Our simulated
ensemble (see driver docstring for the substitution) must show the same
direction: misalignment eliminated, PC tails improved in (almost) every
cluster.
"""

from repro.experiments import fig24


def test_fig24_phase1(run_once):
    result = run_once(
        fig24.run, num_clusters=5, num_hosts=5, duration_ms=10.0, warmup_ms=4.0
    )
    print()
    print(result.table())
    # Mean PC-tail change is a clear improvement (negative %).
    assert result.mean_rnl_change_pct() < -10.0
    # Most clusters improve individually.
    improved = sum(1 for c in result.clusters if c.rnl_change_pct < 0)
    assert improved >= len(result.clusters) - 1
    # The rollout curve ends at zero misalignment.
    assert result.rollout_weeks[-1][1] == 0.0
    assert result.rollout_weeks[0][1] > 20.0
