"""Extension bench: Aequitas over five QoS levels.

The paper's design "organically extends to larger numbers of QoS
priority classes" (§5, Phase 1); it never demonstrates this.  We do:
four SLO-carrying classes over weights 16:8:4:2:1 plus the scavenger,
each class meeting its own target under a top-heavy overload.
"""

from repro.experiments import nqos


def test_nqos_generalization(run_once):
    result = run_once(nqos.run)
    print()
    print(result.table())
    for qos, slo in result.slo_us.items():
        assert result.tails_us[qos] < 1.5 * slo
    tails = [result.tails_us[q] for q in range(4)]
    assert tails == sorted(tails)  # strict class ordering preserved
