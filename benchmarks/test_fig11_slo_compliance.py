"""Figure 11 bench: achieved tail RNL tracks the configured SLO.

Paper: sweeping the QoS_h SLO from 15 to 60 us, the achieved 99.9p RNL
hugs the SLO line while the admitted QoS_h share reflects the
SLO/throughput trade-off.  (Laptop scaling: 99th percentile + faster
alpha; see the driver docstring.)
"""

from repro.experiments import fig11


def test_fig11_slo_compliance(run_once):
    result = run_once(fig11.run, slos_us=(15.0, 25.0, 40.0))
    print()
    print(result.table())
    for point in result.points:
        # Achieved tail within a factor ~2 band of the SLO — i.e., the
        # SLO is neither wildly violated nor trivially over-satisfied.
        assert point.achieved_tail_us < 2.0 * point.slo_us
        assert point.achieved_tail_us > 0.2 * point.slo_us
        # Meaningful traffic admitted at QoS_h in all cases.
        assert point.qos_h_admitted_share > 0.15
