"""Figure 14 bench: baseline tail RNL vs input QoS_h-share.

Paper: with QoS_m pinned at 25%, the QoS_h tail grows with QoS_h-share;
the share where it crosses the 15 us SLO is the maximal admissible
QoS_h traffic that Figure 15's admission targets.
"""

from repro.experiments import fig14


def test_fig14_admissible_sweep(run_once):
    result = run_once(
        fig14.run,
        shares=(0.05, 0.15, 0.30, 0.45, 0.60),
        num_hosts=8,
        duration_ms=12.0,
        warmup_ms=4.0,
    )
    print()
    print(result.table())
    tails_h = [row[1] for row in result.rows]
    # Tail grows with offered QoS_h share (allow small sampling noise).
    assert tails_h[-1] > 2.0 * tails_h[0]
    crossing = result.share_at_slo(15.0)
    print(f"maximal admissible QoS_h-share at 15us SLO: {100 * crossing:.0f}%")
    assert 0.05 <= crossing <= 0.70
    # Every class's tail is finite and ordered h <= m <= l at low share
    # (no priority inversion inside the admissible region).
    low = result.rows[0]
    assert low[1] <= low[2] <= low[3]
