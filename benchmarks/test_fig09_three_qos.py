"""Figure 9 bench: fluid 3-QoS worst-case delay, weights 8:4:1 vs 50:4:1.

Paper takeaway: the admissible (no-inversion) region ends near
QoS_h-share 0.57 with weights 8:4:1 and moves right to ~0.89 with
50:4:1, at the cost of higher QoS_m delay.
"""

from repro.experiments import fig09


def test_fig09_three_qos(run_once):
    light, heavy = run_once(fig09.run_both_panels)
    print()
    print(light.table())
    print(heavy.table())
    assert abs(light.inversion_share() - 8 / 14) < 0.06
    assert abs(heavy.inversion_share() - 50 / 56) < 0.06
    assert heavy.inversion_share() > light.inversion_share()
    # The cost: at mid shares QoS_m delay is no better with weight 50.
    mid_light = [r for r in light.rows if abs(r[0] - 0.4) < 0.02][0]
    mid_heavy = [r for r in heavy.rows if abs(r[0] - 0.4) < 0.02][0]
    assert mid_heavy[2] >= mid_light[2] - 1e-9
