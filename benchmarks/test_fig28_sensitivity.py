"""Figures 28/29 bench (Appendix C): alpha/beta sensitivity.

Paper: shrinking beta from 0.01 to 0.0015 per MTU stabilizes admit
probabilities (Channel A's 1st-percentile p_admit rises 0.82 -> 0.96 in
the Fig-18 scenario) at the cost of slower overload reaction — the
compliance/stability trade-off.
"""

from repro.experiments import fig28_29


def test_fig28_beta_sensitivity(run_once):
    result = run_once(fig28_29.run, duration_ms=50.0)
    print()
    print(result.table())
    # In the in-quota scenario the small beta keeps Channel A's
    # 1st-percentile admit probability at least as high as large beta's.
    small = result.case("fig18", 0.0015)
    large = result.case("fig18", 0.01)
    assert small.p1_channel_a() >= large.p1_channel_a() - 0.02
    assert small.p1_channel_a() > 0.8
    # Stability: the small-beta trace is no noisier than the large-beta.
    assert small.stability_std() <= large.stability_std() + 0.02
