"""Measure the live telemetry plane's overhead: sampler + endpoint.

Runs the in-process live stack (one ``LiveServer``, one
``AdmissionClient``, real loopback TCP) through the same call schedule
twice — telemetry fully off, then fully on (registries on both ends,
the 4 Hz snapshot sampler, and an OpenMetrics endpoint scraped
continuously at 10 Hz) — and reports wall time, throughput, and call
latency for each, plus the relative deltas.  The "on" configuration is
deliberately hostile (a scraper hammering the endpoint an order of
magnitude faster than a real Prometheus would) so the recorded number
is an upper bound.

Writes the ``BENCH_PR9.json`` payload::

    python -m benchmarks.live_overhead --calls 2000 --output BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from typing import Any, Dict, List, Optional

from repro.core.qos import QoSConfig, WEIGHTS_2_QOS
from repro.core.slo import SLO, SLOMap
from repro.live.client import AdmissionClient, RetryPolicy
from repro.live.clock import WallClock
from repro.live.events import EventLog
from repro.live.server import LiveServer
from repro.live.telemetry import LiveTelemetry, TelemetryEndpoint, scrape_openmetrics
from repro.obs.metrics import MetricsRegistry

MS = 1_000_000

#: Patient policy: the benchmark measures telemetry cost, not retries.
PATIENT = RetryPolicy(
    max_attempts=1, deadline_ns=2_000 * MS, attempt_timeout_ns=2_000 * MS
)


def slo_map() -> SLOMap:
    return SLOMap({0: SLO(25 * MS, 90.0)}, QoSConfig(weights=WEIGHTS_2_QOS))


async def _scrape_loop(port: int, interval_s: float, stats: Dict[str, Any]) -> None:
    while True:
        start = time.perf_counter()
        body = await scrape_openmetrics("127.0.0.1", port)
        stats["scrapes"] += 1
        stats["scrape_seconds"] += time.perf_counter() - start
        stats["last_bytes"] = len(body)
        await asyncio.sleep(interval_s)


async def run_config(
    calls: int, batch: int, telemetry: bool, log_dir: str
) -> Dict[str, Any]:
    clock = WallClock()
    suffix = "on" if telemetry else "off"
    server_registry = MetricsRegistry() if telemetry else None
    client_registry = MetricsRegistry() if telemetry else None
    scrape_stats: Dict[str, Any] = {
        "scrapes": 0, "scrape_seconds": 0.0, "last_bytes": 0
    }
    with EventLog(f"{log_dir}/server-{suffix}.jsonl") as server_log, EventLog(
        f"{log_dir}/client-{suffix}.jsonl"
    ) as client_log:
        server = LiveServer(
            clock,
            server_log,
            service_ns_per_mtu=10_000,  # ~100k req/s capacity: never the bottleneck
            queue_limit=max(64, batch * 2),
            registry=server_registry,
        )
        port = await server.start()
        client = AdmissionClient(
            "bench",
            "127.0.0.1",
            port,
            slo_map(),
            seed=1,
            clock=clock,
            log=client_log,
            retry=PATIENT,
            registry=client_registry,
        )
        sampler: Optional[LiveTelemetry] = None
        endpoint: Optional[TelemetryEndpoint] = None
        scraper: Optional["asyncio.Task[None]"] = None
        if telemetry:
            endpoint = TelemetryEndpoint(server_registry)
            metrics_port = await endpoint.start()
            sampler = LiveTelemetry(
                client_registry,
                clock,
                EventLog(f"{log_dir}/metrics-{suffix}.jsonl"),
                interval_ns=250 * MS,
            )
            await sampler.start()
            scraper = asyncio.create_task(
                _scrape_loop(metrics_port, 0.1, scrape_stats)
            )
        latencies_ns: List[int] = []
        start = time.perf_counter()
        try:
            for offset in range(0, calls, batch):
                burst = min(batch, calls - offset)
                results = await asyncio.gather(
                    *(client.call(0, payload_bytes=4096) for _ in range(burst))
                )
                latencies_ns.extend(
                    r.rnl_ns for r in results if r.rnl_ns is not None
                )
        finally:
            wall_s = time.perf_counter() - start
            if scraper is not None:
                scraper.cancel()
                try:
                    await scraper
                except asyncio.CancelledError:
                    pass
            await client.aclose()
            await server.stop()
            if sampler is not None:
                await sampler.stop()
            if endpoint is not None:
                await endpoint.stop()
    latencies_ns.sort()
    out: Dict[str, Any] = {
        "telemetry": telemetry,
        "calls": calls,
        "completed": len(latencies_ns),
        "wall_s": round(wall_s, 4),
        "calls_per_sec": round(calls / wall_s, 1),
        "mean_call_us": round(statistics.fmean(latencies_ns) / 1e3, 2),
        "p50_call_us": round(latencies_ns[len(latencies_ns) // 2] / 1e3, 2),
        "p99_call_us": round(
            latencies_ns[min(len(latencies_ns) - 1, int(len(latencies_ns) * 0.99))]
            / 1e3,
            2,
        ),
    }
    if telemetry:
        out["sampler_snapshots"] = sampler.samples if sampler else 0
        out["scrapes"] = scrape_stats["scrapes"]
        out["mean_scrape_ms"] = round(
            1e3 * scrape_stats["scrape_seconds"] / max(1, scrape_stats["scrapes"]),
            3,
        )
        out["exposition_bytes"] = scrape_stats["last_bytes"]
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--calls", type=int, default=2000)
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--output", default="BENCH_PR9.json")
    parser.add_argument("--log-dir", default="/tmp/live-overhead")
    args = parser.parse_args(argv)

    import pathlib

    pathlib.Path(args.log_dir).mkdir(parents=True, exist_ok=True)
    # Off twice: the first run warms the interpreter/loopback path, the
    # second is the comparison baseline.
    asyncio.run(run_config(args.calls // 4, args.batch, False, args.log_dir))
    off = asyncio.run(run_config(args.calls, args.batch, False, args.log_dir))
    on = asyncio.run(run_config(args.calls, args.batch, True, args.log_dir))

    payload = {
        "benchmark": "live telemetry overhead (sampler + scraped endpoint)",
        "configs": {"off": off, "on": on},
        "overhead": {
            "wall_pct": round(100.0 * (on["wall_s"] / off["wall_s"] - 1.0), 2),
            "mean_call_pct": round(
                100.0 * (on["mean_call_us"] / off["mean_call_us"] - 1.0), 2
            ),
            "throughput_pct": round(
                100.0 * (on["calls_per_sec"] / off["calls_per_sec"] - 1.0), 2
            ),
        },
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload["overhead"], indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
