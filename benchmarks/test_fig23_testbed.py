"""Figure 23 bench: the (simulated) testbed deployment.

Paper (20 machines, weights 8:4:1, input mix 50/35/15, SLOs set for a
20/30/50 target): normalized tails drop from 8.1/5.0/1.3 without
Aequitas to 1.0/0.8/0.9 with it, and the admitted mix moves from the
input toward the target.
"""

from repro.experiments import fig23


def test_fig23_testbed(run_once):
    result = run_once(
        fig23.run, num_hosts=8, duration_ms=25.0, warmup_ms=12.0
    )
    print()
    print(result.table())
    for qos in (0, 1):
        # Aequitas improves every SLO class relative to the baseline...
        assert result.with_norm[qos] < result.without_norm[qos]
    # ...and lands within a small factor of the reference (paper ~1.0).
    assert result.with_norm[0] < 5.0
    # The admitted mix moves from the input toward the target mix.
    input_h, target_h = 0.5, result.target_mix[0]
    assert result.with_mix[0] < result.without_mix[0]
    assert abs(result.with_mix[0] - target_h) < abs(input_h - target_h)
