"""Figure 10 bench: packet simulator validates the closed-form theory.

Paper: "the simulator results precisely track the theory including
priority inversion points and delay values barring QoS_l's delay,
which is slightly higher in the simulation" — both properties checked.
"""

from repro.experiments import fig10


def test_fig10_sim_validation(run_once):
    result = run_once(fig10.run)
    print()
    print(result.table())
    assert result.max_abs_error_h() < 0.01
    for x, sim_h, sim_l, thy_h, thy_l in result.rows:
        assert abs(sim_h - thy_h) < 0.01
        assert sim_l >= thy_l - 0.01  # packetization never undershoots
        assert abs(sim_l - thy_l) < 0.02
