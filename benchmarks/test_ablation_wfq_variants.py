"""Ablation bench: WFQ realization and weight-vector sensitivity.

Two design choices DESIGN.md calls out:

1. **SCFQ vs DWRR** — the paper treats WFQ as the general mechanism
   with virtual-time and DWRR as interchangeable realizations; Aequitas
   must behave the same over either.  We run the Fig-12 workload with
   both and require the per-QoS tails to agree within a factor.

2. **Weight vector (Lemma 2)** — raising the QoS_h weight from 8 to 50
   widens the admissible region, so at the same SLO Aequitas can admit
   *more* QoS_h traffic.
"""

from repro.experiments.cluster import run_cluster
from repro.experiments.fig12 import make_config
from repro.net.queues import DwrrScheduler


def dwrr_factory(weights, buffer_bytes=4 * 1024 * 1024):
    weights = tuple(weights)
    return lambda: DwrrScheduler(weights, buffer_bytes)


def _run_with_factory(num_hosts, factory=None, weights=(8, 4, 1)):
    cfg = make_config(
        "aequitas",
        num_hosts=num_hosts,
        duration_ms=24.0,
        warmup_ms=12.0,
        seed=31,
        weights=weights,
        scheduler_factory=factory(weights) if factory is not None else None,
    )
    return run_cluster(cfg)


def test_ablation_scfq_vs_dwrr(run_once):
    def both():
        scfq = _run_with_factory(6)
        dwrr = _run_with_factory(6, factory=dwrr_factory)
        return scfq, dwrr

    scfq, dwrr = run_once(both)
    print()
    print(f"{'variant':>8} {'tail_h':>8} {'tail_m':>8} {'admitted_h':>11}")
    for name, res in (("SCFQ", scfq), ("DWRR", dwrr)):
        print(
            f"{name:>8} {res.rnl_tail_us(0, 99.0):8.1f} "
            f"{res.rnl_tail_us(1, 99.0):8.1f} "
            f"{res.admitted_mix().get(0, 0):10.1%}"
        )
    # Same admission outcome over either WFQ realization (loose band:
    # the schedulers differ at packet granularity).
    a = scfq.admitted_mix().get(0, 0.0)
    b = dwrr.admitted_mix().get(0, 0.0)
    assert abs(a - b) < 0.15
    assert scfq.rnl_tail_us(0, 99.0) < 2.5 * 15.0
    assert dwrr.rnl_tail_us(0, 99.0) < 2.5 * 15.0


def test_ablation_heavier_weight_admits_more(run_once):
    def both():
        light = _run_with_factory(6, weights=(8, 4, 1))
        heavy = _run_with_factory(6, weights=(50, 4, 1))
        return light, heavy

    light, heavy = run_once(both)
    a = light.admitted_mix().get(0, 0.0)
    b = heavy.admitted_mix().get(0, 0.0)
    print(f"\nadmitted QoS_h share: weights 8:4:1 -> {a:.1%}, 50:4:1 -> {b:.1%}")
    # Lemma 2: more weight -> a no-smaller admissible QoS_h share.
    assert b > a - 0.03
