"""Figure 21 bench: production sizes under extreme overload.

Paper (144 nodes, 25x instantaneous burst): Aequitas improves QoS_h /
QoS_m tails by 3.7x / 2.2x and shifts the admitted mix from (60,30,10)
to roughly (20,26,54).  Scaled run (see driver docstring); the measured
factors and mix shift should match those shapes.
"""

from repro.experiments import fig21


def test_fig21_large_scale(run_once):
    result = run_once(
        fig21.run, num_hosts=8, duration_ms=30.0, warmup_ms=15.0, burst_rho=2.5
    )
    print()
    print(result.table())
    # Big tail improvements for the SLO classes (paper: 3.7x / 2.2x).
    assert result.improvement(0) > 2.0
    assert result.improvement(1) > 1.2
    # The admitted mix shifts sharply toward the scavenger class
    # (paper: QoS_l share 10% -> 54%).
    assert result.with_mix[2] > 0.4
    assert result.with_mix[0] < result.without_mix[0] / 2
