"""Figure 8 bench: theoretical 2-QoS worst-case delay curves.

Paper series (weights 4:1, mu=0.8, rho=1.2): QoS_h delay-free until
~0.67 share, priority inversion at share 0.8, saturation at
mu(1-1/rho)=0.133; QoS_l delay starts at 0.133 and falls to zero.
"""

from repro.experiments import fig08


def test_fig08_theory_delay(run_once):
    result = run_once(fig08.run)
    print()
    print(result.table())
    assert result.inversion_share == 0.8
    rows = {round(x, 3): (dh, dl) for x, dh, dl in result.rows}
    assert rows[0.5][0] == 0.0  # delay-free region
    assert abs(rows[1.0][0] - 0.1333) < 1e-3  # saturation value
    assert abs(rows[0.0][1] - 0.1333) < 1e-3
    assert rows[1.0][1] == 0.0
    # Priority inversion beyond the boundary.
    assert rows[0.9][0] > rows[0.9][1]
    assert rows[0.75][0] < rows[0.75][1]
