"""A disaggregated-storage-style cluster with mixed RPC classes.

Models the paper's motivating workload: an all-to-all cluster where
performance-critical reads/metadata (PC), bulk sequential reads (NC),
and backup traffic (BE) share the network, with production-like
heavy-tailed RPC size distributions per class.  Compares tail RNL and
the realized QoS-mix with and without Aequitas under a bursty overload.

Run:  python examples/storage_cluster.py [num_hosts]
"""

import sys

from repro.core.qos import Priority
from repro.experiments.cluster import ClusterConfig, run_cluster
from repro.rpc.sizes import production_mixture
from repro.rpc.workload import byte_mix_to_rpc_mix


def main(num_hosts: int = 8) -> None:
    sizes = production_mixture()
    byte_mix = {Priority.PC: 0.5, Priority.NC: 0.3, Priority.BE: 0.2}
    print(f"{num_hosts}-host storage cluster, byte mix PC/NC/BE = 50/30/20,")
    print("burst load 1.4x in 400 us cycles, SLOs 15/25 us per MTU\n")

    results = {}
    for scheme in ("wfq", "aequitas"):
        cfg = ClusterConfig(
            scheme=scheme,
            num_hosts=num_hosts,
            slo_high_us=15.0,
            slo_med_us=25.0,
            mu=0.8,
            rho=1.4,
            period_us=400.0,
            priority_mix=byte_mix_to_rpc_mix(byte_mix, sizes),
            size_dist=sizes,
            duration_ms=30.0,
            warmup_ms=15.0,
            seed=7,
        )
        results[scheme] = run_cluster(cfg)

    names = {0: "QoS_h (PC)", 1: "QoS_m (NC)", 2: "QoS_l (BE)"}
    print(f"{'class':14}{'p99.9 RNL w/o':>15}{'p99.9 RNL w/':>15}  (us/MTU)")
    for qos in (0, 1, 2):
        print(
            f"{names[qos]:14}"
            f"{results['wfq'].rnl_tail_us(qos, 99.9):15.1f}"
            f"{results['aequitas'].rnl_tail_us(qos, 99.9):15.1f}"
        )
    print()
    for scheme in ("wfq", "aequitas"):
        mix = results[scheme].admitted_mix()
        label = "w/o Aequitas" if scheme == "wfq" else "w/ Aequitas "
        print(
            f"realized QoS mix {label}: "
            + " / ".join(f"{100 * mix.get(q, 0):.0f}%" for q in (0, 1, 2))
        )
    down = results["aequitas"].metrics.downgrades
    total = results["aequitas"].metrics.issued_count
    print(f"\nAequitas downgraded {down} of {total} RPCs "
          f"({100 * down / total:.1f}%) to protect the SLO classes.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
