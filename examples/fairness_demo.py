"""Fairness demo: two RPC channels with unequal QoS_h demand.

Channel A requests 40% of its line-rate RPC stream on QoS_h, Channel B
80%.  Aequitas' RPC-clocked AIMD drives them toward *equal admitted
throughput* via *different* admit probabilities; a third scenario shows
an in-quota channel (10%) keeping p_admit ~ 1.0 while the other
reclaims the slack (max-min fairness).

Run:  python examples/fairness_demo.py
"""

from repro.experiments.fig17 import FairnessResult, run_two_channels

SPARK_CHARS = " .:-=+*#%@"


def sparkline(values, width: int = 60) -> str:
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    hi = max(sampled) or 1.0
    return "".join(
        SPARK_CHARS[min(int(v / hi * (len(SPARK_CHARS) - 1)), len(SPARK_CHARS) - 1)]
        for v in sampled
    )


def show(result: FairnessResult, title: str) -> None:
    print(f"\n=== {title} ===")
    print(result.table())
    for name, tr in (("A", result.channel_a), ("B", result.channel_b)):
        values = [v for _, v in tr.p_admit]
        print(f"p_admit[{name}] |{sparkline(values)}|")
    for name, tr in (("A", result.channel_a), ("B", result.channel_b)):
        values = [v for _, v in tr.goodput_gbps]
        print(f"goodput[{name}] |{sparkline(values)}| (0..max Gbps)")


def main() -> None:
    print("3-node setup: both channels send 32 KB RPCs at line rate to one")
    print("server; QoS_h SLO 15 us/MTU at p99.")
    show(run_two_channels(share_a=0.4, share_b=0.8, duration_ms=60.0),
         "Fig 17 scenario: 40% vs 80% QoS_h demand")
    show(run_two_channels(share_a=0.1, share_b=0.8, duration_ms=60.0),
         "Fig 18 scenario: in-quota 10% vs 80%")
    print("\nNote how the in-quota channel's admit probability stays pinned")
    print("at 1.0 — being well-behaved is never punished (max-min fairness).")


if __name__ == "__main__":
    main()
