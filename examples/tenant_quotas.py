"""Multi-tenant guarantees: the quota-server extension (§5.2).

Aequitas shares each QoS class fairly among RPC channels but offers no
*per-tenant* admission guarantee — a tenant running many channels can
crowd out a small one.  The paper sketches a centralized RPC quota
server as the fix; this example runs it:

Tenant "gold" (host 0) has a 20 Gbps QoS_h reservation.  Tenant "bulk"
(hosts 1-2) floods QoS_h with no reservation.  Without the quota
server, gold's admitted throughput sinks toward its AIMD fair share;
with it, gold's reserved traffic always proceeds to the probabilistic
stage while bulk's overflow is downgraded first.

Run:  python examples/tenant_quotas.py
"""

import random

from repro.core.admission import AdmissionParams
from repro.core.qos import Priority
from repro.core.quota import QuotaReservation, QuotaServer
from repro.core.slo import SLOMap
from repro.net.topology import build_star, wfq_factory
from repro.rpc.sizes import FixedSize
from repro.rpc.stack import MetricsCollector, RpcStack
from repro.rpc.workload import OpenLoopSource, steady_pattern
from repro.sim.engine import Simulator, ns_from_ms, ns_from_us
from repro.transport.reliable import TransportConfig, TransportEndpoint
from repro.transport.swift import SwiftCC, SwiftParams

GOLD_RATE_BPS = 35e9
DURATION_MS = 30.0


def run(with_quota: bool):
    sim = Simulator()
    net = build_star(sim, 4, wfq_factory((8, 4, 1)))
    slo_map = SLOMap.for_three_levels(
        ns_from_us(15), ns_from_us(25), target_percentile=99.0
    )
    config = TransportConfig(
        cc_factory=lambda: SwiftCC(SwiftParams(target_delay_ns=25_000)),
        ack_bypass=True,
    )
    endpoints = [TransportEndpoint(sim, h, config) for h in net.hosts]
    for a in endpoints:
        for b in endpoints:
            if a is not b:
                a.register_peer(b)

    server = None
    if with_quota:
        server = QuotaServer(lambda: sim.now, total_rate_bps={0: 100e9})
        server.reserve(QuotaReservation("gold", 0, rate_bps=GOLD_RATE_BPS))

    tenants = {0: "gold", 1: "bulk", 2: "bulk"}
    metrics = MetricsCollector()
    stacks = [
        RpcStack(
            sim, net.hosts[i], endpoints[i], slo_map,
            AdmissionParams(alpha=0.05), metrics, seed=i,
            quota_server=server,
            tenant_of=lambda rpc: tenants.get(rpc.src, "bulk"),
        )
        for i in range(3)
    ]
    # Gold offers 35 Gbps of QoS_h (above its ~20 Gbps AIMD fair share
    # of the admissible region); each bulk host offers 80 Gbps.
    loads = {0: (0.35, 1.0), 1: (0.8, 1.0), 2: (0.8, 1.0)}
    for i, (qos_h_frac, load) in loads.items():
        OpenLoopSource(
            sim, stacks[i], [3],
            {Priority.PC: qos_h_frac, Priority.BE: 1.0 - qos_h_frac},
            FixedSize(32 * 1024), steady_pattern(load),
            rng=random.Random(100 + i), stop_ns=ns_from_ms(DURATION_MS),
        )
    sim.run(until=ns_from_ms(DURATION_MS))

    def admitted_gbps(host):
        flow = endpoints[host].flows.get((3, 0))
        if flow is None:
            return 0.0
        return flow.acked_payload_bytes * 8 / (DURATION_MS * 1e6)

    return admitted_gbps(0), admitted_gbps(1) + admitted_gbps(2), metrics


def main() -> None:
    print("Tenant 'gold' reserves 35 Gbps of QoS_h; tenants 'bulk' offer")
    print("160 Gbps of unreserved QoS_h against one 100 Gbps server.\n")
    for with_quota in (False, True):
        gold, bulk, metrics = run(with_quota)
        label = "with quota server " if with_quota else "Aequitas alone    "
        print(
            f"{label}: gold QoS_h {gold:5.1f} Gbps | bulk QoS_h {bulk:5.1f} Gbps"
            f" | downgrades {metrics.downgrades}"
        )
    print("\nWith the reservation, gold's admitted rate holds near its")
    print("guarantee regardless of how hard the bulk tenants push.")


if __name__ == "__main__":
    main()
