"""Quickstart: Aequitas admission control on a 3-node cluster.

Two client hosts blast 32 KB performance-critical WRITE RPCs at one
server at twice its link capacity.  Without admission control the tail
RPC network latency (RNL) explodes; with Aequitas, hosts downgrade the
excess to the scavenger QoS and the admitted traffic meets its SLO.

Run:  python examples/quickstart.py
"""

from repro.experiments.cluster import ClusterConfig, run_cluster
from repro.experiments.fig11 import _three_node_traffic
from repro.rpc.sizes import FixedSize


def main() -> None:
    common = dict(
        num_hosts=3,
        slo_high_us=15.0,  # QoS_h target: 15 us per MTU, p99
        slo_med_us=25.0,
        target_percentile=99.0,
        alpha=0.05,  # laptop-scaled AIMD (see DESIGN.md)
        size_dist=FixedSize(32 * 1024),
        duration_ms=30.0,
        warmup_ms=15.0,
        seed=1,
        traffic_fn=_three_node_traffic(load=1.0, qos_h_fraction=0.7),
    )

    print("Simulating 2x overload on a 100 Gbps server link...")
    baseline = run_cluster(ClusterConfig(scheme="wfq", **common))
    aequitas = run_cluster(ClusterConfig(scheme="aequitas", **common))

    print()
    print(f"{'':24}{'w/o Aequitas':>14}{'w/ Aequitas':>14}")
    print(
        f"{'QoS_h p99 RNL (us/MTU)':24}"
        f"{baseline.rnl_tail_us(0, 99.0):14.1f}"
        f"{aequitas.rnl_tail_us(0, 99.0):14.1f}"
    )
    print(
        f"{'SLO (us/MTU)':24}{15.0:14.1f}{15.0:14.1f}"
    )
    share_b = baseline.admitted_mix().get(0, 0.0)
    share_a = aequitas.admitted_mix().get(0, 0.0)
    print(f"{'QoS_h admitted share':24}{share_b:14.1%}{share_a:14.1%}")
    print(
        f"{'downgraded RPCs':24}{baseline.metrics.downgrades:14d}"
        f"{aequitas.metrics.downgrades:14d}"
    )
    print()
    if aequitas.rnl_tail_us(0, 99.0) <= 1.5 * 15.0:
        print("Aequitas admitted the sustainable share and met the SLO; the")
        print("rest was explicitly downgraded to the scavenger class (the")
        print("application is notified and may reshuffle its priorities).")
    else:
        print("Warning: tail above SLO — try a longer run for convergence.")


if __name__ == "__main__":
    main()
