"""Operator tool: explore the admissible region and pick SLOs.

The paper positions its simulator as "a tool for datacenter operators
to help define the admissible region and set the right SLOs" (§6.1).
This example does exactly that with the analysis package:

1. prints the closed-form 2-QoS worst-case delay profile (Figure 8);
2. sweeps the 3-QoS fluid model for two weight settings (Figure 9) and
   reports where priority inversion begins;
3. converts a chosen operating point into concrete per-MTU SLO targets
   for a given burst period.

Run:  python examples/admissible_region.py
"""

from repro.analysis.admissible import (
    guaranteed_admitted_share,
    max_admissible_high_share,
)
from repro.analysis.delay_bounds import TrafficModel, delay_h, delay_l
from repro.analysis.fluid import sweep_three_qos


def main() -> None:
    mu, rho = 0.8, 1.4
    print(f"Traffic model: average load mu={mu}, burst load rho={rho}\n")

    # --- 2-QoS closed form ------------------------------------------------
    model = TrafficModel(mu=mu, rho=1.2, phi=4.0)
    print("2-QoS worst-case delay (weights 4:1, rho=1.2), normalized to the")
    print("burst period:")
    print(f"{'QoSh-share':>11} {'delay_h':>9} {'delay_l':>9}")
    for pct in range(0, 101, 10):
        x = pct / 100
        print(f"{pct:10d}% {delay_h(x, model):9.3f} {delay_l(x, model):9.3f}")

    # --- 3-QoS fluid sweep ------------------------------------------------
    print("\n3-QoS fluid sweep (QoS_m:QoS_l fixed 2:1):")
    for weights in ((8, 4, 1), (50, 4, 1)):
        boundary = max_admissible_high_share(list(weights), mu=mu, rho=rho)
        print(f"  weights {weights}: admissible QoS_h-share up to "
              f"{100 * boundary:.0f}%")
    print("  (raising the QoS_h weight widens its region but raises QoS_m"
          " delay — Lemma 2)")

    # --- Turning a point into SLOs ----------------------------------------
    weights = (8, 4, 1)
    period_us = 400.0
    target_share = 0.4
    rows = sweep_three_qos([target_share], weights=weights, mu=mu, rho=rho)
    _, dh, dm, dl = rows[0]
    print(f"\nOperating point: QoS_h-share {100 * target_share:.0f}% on "
          f"weights {weights}, {period_us:.0f} us burst period")
    print(f"  worst-case delays: QoS_h {dh * period_us:.1f} us, "
          f"QoS_m {dm * period_us:.1f} us, QoS_l {dl * period_us:.1f} us")
    print("  -> set SLOs at or above those worst cases, e.g. "
          f"{max(dh * period_us, 5):.0f}/{max(dm * period_us, 10):.0f} us per MTU")
    floor = guaranteed_admitted_share(weights, 0, mu, rho)
    print(f"  regardless of SLO, at least {100 * floor:.0f}% of line rate is"
          " admitted on QoS_h (Section 5.2 bound)")


if __name__ == "__main__":
    main()
